package f3d

import (
	"math"
	"strings"
	"testing"

	"repro/internal/euler"
	"repro/internal/grid"
)

// exchangeSolver builds a small two-zone coupled solver with a pulse,
// the substrate for plane capture/apply tests.
func exchangeSolver(t *testing.T) *CacheSolver {
	t.Helper()
	c, ifaces := SplitAlongJ("ex", 12, 5, 4, 5)
	cfg := DefaultConfig(c)
	cfg.Interfaces = ifaces
	s, err := NewCacheSolver(cfg, CacheOptions{})
	if err != nil {
		t.Fatalf("solver: %v", err)
	}
	t.Cleanup(s.Close)
	InitPulse(s, 0.01)
	return s
}

func TestCapturePlaneMatchesInterfaceBuffers(t *testing.T) {
	s := exchangeSolver(t)
	s.Step() // give the faces non-trivial values

	// CapturePlane of zone 0's JMax side must equal what
	// captureInterfaces stores in toRight, and zone 1's JMin side must
	// equal toLeft.
	bufs := newIfaceBuffers(s.cfg.Case, s.cfg.Interfaces)
	captureInterfaces(s.zones, s.cfg.Interfaces, bufs)

	p0, err := CapturePlane(s, 0, FaceJMax)
	if err != nil {
		t.Fatalf("capture zone 0: %v", err)
	}
	p1, err := CapturePlane(s, 1, FaceJMin)
	if err != nil {
		t.Fatalf("capture zone 1: %v", err)
	}
	for i := range p0.Data {
		if p0.Data[i] != bufs[0].toRight[i] {
			t.Fatalf("toRight[%d]: captured %v, buffer %v", i, p0.Data[i], bufs[0].toRight[i])
		}
		if p1.Data[i] != bufs[0].toLeft[i] {
			t.Fatalf("toLeft[%d]: captured %v, buffer %v", i, p1.Data[i], bufs[0].toLeft[i])
		}
	}
}

func TestCaptureApplyRoundTrip(t *testing.T) {
	s := exchangeSolver(t)
	s.Step()

	// Capture zone 0's donor plane, retarget it to zone 1's JMin face,
	// apply, and confirm zone 1's j=0 face holds exactly the donor
	// values.
	p, err := CapturePlane(s, 0, FaceJMax)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	q := p.RetargetTo(1)
	if q.Zone != 1 || q.Face != FaceJMin {
		t.Fatalf("retarget: got zone %d face %v", q.Zone, q.Face)
	}
	if err := q.Apply(s); err != nil {
		t.Fatalf("apply: %v", err)
	}
	z1 := s.Zones()[1]
	var buf [euler.NC]float64
	pos := 0
	for l := 0; l < z1.Zone.LMax; l++ {
		for k := 0; k < z1.Zone.KMax; k++ {
			z1.Q.Point(0, k, l, buf[:])
			for c := 0; c < euler.NC; c++ {
				if buf[c] != q.Data[pos+c] {
					t.Fatalf("face point (%d,%d) comp %d: %v, want %v", k, l, c, buf[c], q.Data[pos+c])
				}
			}
			pos += euler.NC
		}
	}
}

func TestPlaneSerializationRoundTrip(t *testing.T) {
	s := exchangeSolver(t)
	s.Step()
	p, err := CapturePlane(s, 1, FaceJMin)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	p = p.RetargetTo(0)
	// Poison a value with a bit pattern decimal formats mangle.
	p.Data[3] = math.Nextafter(1.0/3.0, 1)

	b, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var q BoundaryPlane
	if err := q.UnmarshalBinary(b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if q.Zone != p.Zone || q.Face != p.Face || q.KMax != p.KMax || q.LMax != p.LMax {
		t.Fatalf("header changed: %+v vs %+v", q, p)
	}
	if len(q.Data) != len(p.Data) {
		t.Fatalf("data length %d, want %d", len(q.Data), len(p.Data))
	}
	for i := range p.Data {
		if math.Float64bits(q.Data[i]) != math.Float64bits(p.Data[i]) {
			t.Fatalf("data[%d] not bitwise: %x vs %x", i, math.Float64bits(q.Data[i]), math.Float64bits(p.Data[i]))
		}
	}
}

func TestPlaneSerializationErrors(t *testing.T) {
	good := BoundaryPlane{Zone: 0, Face: FaceJMin, KMax: 2, LMax: 2, Data: make([]float64, 2*2*euler.NC)}
	b, err := good.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal good plane: %v", err)
	}

	cases := []struct {
		name string
		b    []byte
		want string
	}{
		{"truncated header", b[:10], "payload of"},
		{"truncated data", b[:len(b)-8], "want"},
		{"trailing bytes", append(append([]byte(nil), b...), 0), "want"},
		{"bad magic", func() []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xff
			return c
		}(), "bad magic"},
		{"bad face", func() []byte {
			c := append([]byte(nil), b...)
			c[11] = byte(FaceKMin)
			return c
		}(), "bad face"},
		{"zero dims", func() []byte {
			c := append([]byte(nil), b...)
			c[12], c[13], c[14], c[15] = 0, 0, 0, 0
			return c
		}(), "bad dims"},
	}
	for _, tc := range cases {
		var p BoundaryPlane
		err := p.UnmarshalBinary(tc.b)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// Marshal of inconsistent planes must fail too.
	bad := good
	bad.Data = bad.Data[:5]
	if _, err := bad.MarshalBinary(); err == nil {
		t.Error("marshal with short data: no error")
	}
	bad = good
	bad.Face = FaceLMax
	if _, err := bad.MarshalBinary(); err == nil {
		t.Error("marshal with non-J face: no error")
	}
}

func TestPlaneApplyDimensionMismatch(t *testing.T) {
	s := exchangeSolver(t)
	z := s.Zones()[0].Zone

	// Wrong KMax/LMax for the receiving zone.
	p := BoundaryPlane{Zone: 0, Face: FaceJMin, KMax: z.KMax + 1, LMax: z.LMax,
		Data: make([]float64, (z.KMax+1)*z.LMax*euler.NC)}
	if err := p.Apply(s); err == nil || !strings.Contains(err.Error(), "onto zone") {
		t.Errorf("mismatched dims: err %v", err)
	}
	// Data length inconsistent with the declared dims.
	p = BoundaryPlane{Zone: 0, Face: FaceJMin, KMax: z.KMax, LMax: z.LMax, Data: make([]float64, 3)}
	if err := p.Apply(s); err == nil || !strings.Contains(err.Error(), "carries") {
		t.Errorf("short data: err %v", err)
	}
	// Zone out of range.
	p = BoundaryPlane{Zone: 7, Face: FaceJMin, KMax: z.KMax, LMax: z.LMax,
		Data: make([]float64, z.KMax*z.LMax*euler.NC)}
	if err := p.Apply(s); err == nil || !strings.Contains(err.Error(), "zone 7") {
		t.Errorf("bad zone: err %v", err)
	}
	// Non-J faces are not exchangeable.
	if _, err := CapturePlane(s, 0, FaceKMax); err == nil {
		t.Error("capture of K face: no error")
	}
	if _, err := CapturePlane(s, 9, FaceJMin); err == nil {
		t.Error("capture of missing zone: no error")
	}
}

func TestZoneSnapshotRestore(t *testing.T) {
	s := exchangeSolver(t)
	s.Step()
	snap, err := SnapshotZone(s, 1)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	before := append([]float64(nil), s.Zones()[1].Q.Data...)
	s.Step()
	s.Step()
	if err := snap.Restore(s); err != nil {
		t.Fatalf("restore: %v", err)
	}
	after := s.Zones()[1].Q.Data
	for i := range before {
		if math.Float64bits(before[i]) != math.Float64bits(after[i]) {
			t.Fatalf("Q[%d] not restored bitwise", i)
		}
	}
	// Error paths: bad zone, wrong storage size.
	if _, err := SnapshotZone(s, 5); err == nil {
		t.Error("snapshot of missing zone: no error")
	}
	bad := ZoneSnapshot{Zone: 0, Data: make([]float64, 3)}
	if err := bad.Restore(s); err == nil {
		t.Error("restore with wrong size: no error")
	}
	bad = ZoneSnapshot{Zone: -1}
	if err := bad.Restore(s); err == nil {
		t.Error("restore of missing zone: no error")
	}
}

// TestBoundaryHookReproducesZonalSolve is the keystone: driving two
// single-zone solvers whose coupling goes through CapturePlane /
// BoundaryHook + Apply must reproduce the coupled two-zone solver
// bitwise — the distributed exchange in miniature, before any
// transport is involved.
func TestBoundaryHookReproducesZonalSolve(t *testing.T) {
	c, ifaces := SplitAlongJ("hook", 14, 6, 5, 6)
	refCfg := DefaultConfig(c)
	refCfg.Interfaces = ifaces
	ref, err := NewCacheSolver(refCfg, CacheOptions{})
	if err != nil {
		t.Fatalf("ref solver: %v", err)
	}
	defer ref.Close()
	InitPulse(ref, 0.02)

	// Two "workers": each holds one zone of the same case, with no
	// local interfaces; cross planes go through the exchange API. Dt
	// must be shared, exactly as the cluster engine shares it.
	mk := func(zi int) (*CacheSolver, *[]BoundaryPlane) {
		sub := grid.Case{Name: "w", Zones: []grid.Zone{c.Zones[zi]}}
		cfg := refCfg
		cfg.Case = sub
		cfg.Interfaces = nil
		inbox := &[]BoundaryPlane{}
		s, err := NewCacheSolver(cfg, CacheOptions{})
		if err != nil {
			t.Fatalf("worker solver: %v", err)
		}
		t.Cleanup(s.Close)
		InitPulse(s, 0.02)
		return s, inbox
	}
	s0, in0 := mk(0)
	s1, in1 := mk(1)
	// Install hooks now that the solvers exist (the hook closes over
	// its own solver).
	s0.opts.BoundaryHook = func(zone int) {
		for i := range *in0 {
			if err := (*in0)[i].Apply(s0); err != nil {
				t.Errorf("apply on worker 0: %v", err)
			}
		}
	}
	s1.opts.BoundaryHook = func(zone int) {
		for i := range *in1 {
			if err := (*in1)[i].Apply(s1); err != nil {
				t.Errorf("apply on worker 1: %v", err)
			}
		}
	}

	const steps = 6
	for i := 0; i < steps; i++ {
		// Capture at time level n on both workers, then exchange, then
		// step — the lockstep round of the cluster engine.
		p0, err := CapturePlane(s0, 0, FaceJMax)
		if err != nil {
			t.Fatalf("capture w0: %v", err)
		}
		p1, err := CapturePlane(s1, 0, FaceJMin)
		if err != nil {
			t.Fatalf("capture w1: %v", err)
		}
		*in1 = []BoundaryPlane{p0.RetargetTo(0)}
		*in0 = []BoundaryPlane{p1.RetargetTo(0)}

		refSt := ref.Step()
		st0 := s0.Step()
		st1 := s1.Step()

		// Reassemble the global residual from the per-zone parts in
		// zone order.
		zr0, zr1 := s0.ZoneResiduals()[0], s1.ZoneResiduals()[0]
		res := math.Sqrt((zr0.SumSq + zr1.SumSq) / float64(zr0.Points+zr1.Points))
		if math.Float64bits(res) != math.Float64bits(refSt.Residual) {
			t.Fatalf("step %d: sharded residual %v, reference %v", i, res, refSt.Residual)
		}
		if md := math.Max(st0.MaxDelta, st1.MaxDelta); md != refSt.MaxDelta {
			t.Fatalf("step %d: sharded max-delta %v, reference %v", i, md, refSt.MaxDelta)
		}
	}

	// Final fields must match bitwise too.
	for zi, s := range []*CacheSolver{s0, s1} {
		refQ := ref.Zones()[zi].Q.Data
		gotQ := s.Zones()[0].Q.Data
		for i := range refQ {
			if math.Float64bits(refQ[i]) != math.Float64bits(gotQ[i]) {
				t.Fatalf("zone %d Q[%d]: sharded %v, reference %v", zi, i, gotQ[i], refQ[i])
			}
		}
	}
}
