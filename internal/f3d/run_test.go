package f3d

import (
	"math"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/profile"
)

func TestRunToSteadyConverges(t *testing.T) {
	cfg := testConfig(11, 10, 9)
	s := newCache(t, cfg, CacheOptions{})
	InitPulse(s, 0.05)
	h := RunToSteady(s, 1e-3, 500)
	if !h.Converged {
		t.Fatalf("did not converge in %d steps (last residual %g)",
			h.Steps(), h.Residuals[len(h.Residuals)-1])
	}
	if h.ReductionOrders() < 3 {
		t.Errorf("ReductionOrders = %g, want >= 3", h.ReductionOrders())
	}
	// Residuals must be recorded for every step taken.
	if h.Steps() < 2 {
		t.Errorf("suspiciously short history: %d", h.Steps())
	}
}

func TestRunToSteadyUniformImmediate(t *testing.T) {
	cfg := testConfig(8, 8, 8)
	s := newCache(t, cfg, CacheOptions{})
	InitUniform(s)
	h := RunToSteady(s, 1e-6, 100)
	if !h.Converged || h.Steps() != 1 {
		t.Errorf("uniform flow should converge at step 1: %+v", h)
	}
	if !math.IsInf(h.ReductionOrders(), 0) && h.ReductionOrders() != 0 {
		t.Errorf("ReductionOrders on trivial history = %g", h.ReductionOrders())
	}
}

func TestRunToSteadyMaxStepsCap(t *testing.T) {
	cfg := testConfig(10, 9, 8)
	s := newCache(t, cfg, CacheOptions{})
	InitPulse(s, 0.05)
	h := RunToSteady(s, 1e-12, 5)
	if h.Converged {
		t.Error("cannot reach 1e-12 in 5 steps")
	}
	if h.Steps() != 5 {
		t.Errorf("history has %d steps, want 5", h.Steps())
	}
}

func TestRunToSteadyPanics(t *testing.T) {
	cfg := testConfig(8, 8, 8)
	s := newCache(t, cfg, CacheOptions{})
	InitUniform(s)
	for name, fn := range map[string]func(){
		"relTol0": func() { RunToSteady(s, 0, 10) },
		"relTol1": func() { RunToSteady(s, 1, 10) },
		"steps":   func() { RunToSteady(s, 0.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistoryMaxDiff(t *testing.T) {
	a := History{Residuals: []float64{1, 0.5, 0.25}}
	b := History{Residuals: []float64{1, 0.4, 0.25}}
	if got := a.MaxDiff(&b); math.Abs(got-0.1) > 1e-15 {
		t.Errorf("MaxDiff = %g, want 0.1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	a.MaxDiff(&History{Residuals: []float64{1}})
}

func TestCrossValidate(t *testing.T) {
	cfg := testConfig(10, 9, 8)
	rep, err := CrossValidate(cfg, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("validation failed:\n%s", rep.String())
	}
	if !strings.Contains(rep.String(), "OK (bitwise)") {
		t.Errorf("report formatting: %q", rep.String())
	}
	// Argument validation.
	if _, err := CrossValidate(cfg, 0, 3); err == nil {
		t.Error("steps=0 accepted")
	}
	if _, err := CrossValidate(cfg, 5, 1); err == nil {
		t.Error("workers=1 accepted")
	}
	bad := cfg
	bad.Dt = -1
	if _, err := CrossValidate(bad, 5, 3); err == nil {
		t.Error("bad config accepted")
	}
}

func TestCrossValidateViscousZonal(t *testing.T) {
	// The full ladder also holds with viscous terms and zonal coupling.
	c, ifaces := SplitAlongJ("z", 17, 9, 10, 8)
	cfg := DefaultConfig(c)
	cfg.Interfaces = ifaces
	cfg.Viscous, cfg.Re = true, 300
	rep, err := CrossValidate(cfg, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("viscous zonal validation failed:\n%s", rep.String())
	}
}

func TestProfilerHook(t *testing.T) {
	cfg := DefaultConfig(grid.Scaled(grid.Paper1M(), 0.12))
	prof := profile.New()
	s := newCache(t, cfg, CacheOptions{Profiler: prof})
	InitPulse(s, 0.02)
	const steps = 3
	for i := 0; i < steps; i++ {
		s.Step()
	}
	entries := prof.Entries()
	// 5 phases × 3 zones.
	if len(entries) != 15 {
		t.Fatalf("profiler has %d entries, want 15: %v", len(entries), entries)
	}
	for _, e := range entries {
		if e.Calls != steps {
			t.Errorf("entry %s has %d calls, want %d", e.Name, e.Calls, steps)
		}
		if e.Total <= 0 {
			t.Errorf("entry %s has no charged time", e.Name)
		}
	}
	// The sweeps dominate the RHS, which dominates BC — the profile
	// shape the paper's incremental workflow exploits.
	byName := map[string]profile.Entry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	z := cfg.Case.Zones[2].Name // largest zone
	if byName[z+"/sweep-jk"].Total <= byName[z+"/bc"].Total {
		t.Error("sweeps should out-cost boundary conditions")
	}
	// Profiler + ZoneTeams is rejected.
	teams := newZoneTeams(t, 3, 1)
	if _, err := NewCacheSolver(cfg, CacheOptions{Profiler: prof, ZoneTeams: teams}); err == nil {
		t.Error("Profiler with ZoneTeams accepted")
	}
}

func TestIntegrationMidScalePaperCase(t *testing.T) {
	// The full validation ladder on a mid-scale replica of the paper's
	// 1M case (three zones, zonal interfaces, viscous terms).
	if testing.Short() {
		t.Skip("mid-scale integration test skipped in -short mode")
	}
	c := grid.UnifySpacing(grid.Scaled(grid.Paper1M(), 0.30))
	cfg := DefaultConfig(c)
	cfg.Interfaces = []Interface{{Left: 0, Right: 1}, {Left: 1, Right: 2}}
	cfg.Viscous, cfg.Re = true, 800
	rep, err := CrossValidate(cfg, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("mid-scale validation failed:\n%s", rep.String())
	}
	// And the pulse problem converges on it.
	s := newCache(t, cfg, CacheOptions{})
	InitPulse(s, 0.03)
	h := RunToSteady(s, 1e-2, 150)
	if !h.Converged {
		t.Errorf("mid-scale case did not converge in %d steps", h.Steps())
	}
}
