package f3d

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/parloop"
)

func newBlock(t *testing.T, cfg Config, opts CacheOptions) *BlockSolver {
	t.Helper()
	s, err := NewBlockSolver(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestBlockUniformFlowPreservedExactly(t *testing.T) {
	cfg := testConfig(9, 8, 7)
	s := newBlock(t, cfg, CacheOptions{})
	InitUniform(s)
	for i := 0; i < 5; i++ {
		st := s.Step()
		if st.Residual != 0 || st.MaxDelta != 0 {
			t.Fatalf("step %d: block solver drifted on uniform flow (res %g, dq %g)",
				i, st.Residual, st.MaxDelta)
		}
	}
}

func TestBlockSolverConverges(t *testing.T) {
	cfg := testConfig(12, 11, 10)
	s := newBlock(t, cfg, CacheOptions{})
	InitPulse(s, 0.05)
	first := s.Step()
	var last StepStats
	for i := 0; i < 60; i++ {
		last = s.Step()
		if math.IsNaN(last.Residual) {
			t.Fatalf("step %d: block solver produced NaN", i)
		}
	}
	if last.Residual > first.Residual/10 {
		t.Errorf("block residual did not decay: %g -> %g", first.Residual, last.Residual)
	}
}

func TestBlockAndDiagonalShareRHS(t *testing.T) {
	// Identical initial data gives an identical first residual (the RHS
	// is shared); the implicit paths then differ.
	cfg := testConfig(10, 9, 8)
	bs := newBlock(t, cfg, CacheOptions{})
	cs := newCache(t, cfg, CacheOptions{})
	InitPulse(bs, 0.03)
	InitPulse(cs, 0.03)
	rb := bs.Step()
	rc := cs.Step()
	if rb.Residual != rc.Residual {
		t.Errorf("first-step residuals differ: block %.17g vs diagonal %.17g", rb.Residual, rc.Residual)
	}
	if d := MaxPointwiseDiff(bs, cs); d == 0 {
		t.Error("block and diagonal schemes should differ after an implicit step (different operators)")
	}
}

func TestBlockAndDiagonalReachSameSteadyState(t *testing.T) {
	// Both operators drive the same RHS to zero: after damping a pulse
	// they agree to the convergence tolerance, not bitwise.
	cfg := testConfig(9, 8, 7)
	bs := newBlock(t, cfg, CacheOptions{})
	cs := newCache(t, cfg, CacheOptions{})
	InitPulse(bs, 0.02)
	InitPulse(cs, 0.02)
	for i := 0; i < 200; i++ {
		bs.Step()
		cs.Step()
	}
	if d := MaxPointwiseDiff(bs, cs); d > 1e-6 {
		t.Errorf("steady states differ by %g", d)
	}
}

func TestBlockSerialParallelAgreeBitwise(t *testing.T) {
	cfg := testConfig(9, 9, 8)
	serial := newBlock(t, cfg, CacheOptions{})
	team := parloop.NewTeam(3)
	defer team.Close()
	par := newBlock(t, cfg, CacheOptions{Team: team, Phases: AllPhases()})
	InitPulse(serial, 0.02)
	InitPulse(par, 0.02)
	for i := 0; i < 5; i++ {
		ss := serial.Step()
		sp := par.Step()
		if ss.Residual != sp.Residual {
			t.Fatalf("step %d: block serial/parallel residual mismatch", i)
		}
	}
	if d := MaxPointwiseDiff(serial, par); d != 0 {
		t.Fatalf("block serial/parallel solutions differ by %g", d)
	}
}

func TestBlockViscousStable(t *testing.T) {
	cfg := testConfig(8, 8, 10)
	cfg.Viscous = true
	cfg.Re = 100
	s := newBlock(t, cfg, CacheOptions{})
	InitPulse(s, 0.03)
	for i := 0; i < 30; i++ {
		st := s.Step()
		if math.IsNaN(st.Residual) {
			t.Fatalf("step %d: viscous block solver blew up", i)
		}
	}
}

func TestBlockSolverRejectsMerged(t *testing.T) {
	cfg := testConfig(8, 8, 8)
	if _, err := NewBlockSolver(cfg, CacheOptions{Merged: true}); err == nil {
		t.Error("merged regions should be rejected")
	}
	bad := cfg
	bad.Dt = -1
	if _, err := NewBlockSolver(bad, CacheOptions{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestBlockMultiZone(t *testing.T) {
	cfg := DefaultConfig(grid.Scaled(grid.Paper1M(), 0.1))
	s := newBlock(t, cfg, CacheOptions{})
	InitPulse(s, 0.02)
	st := s.Step()
	if st.Residual <= 0 || math.IsNaN(st.Residual) {
		t.Fatalf("multi-zone block step residual %g", st.Residual)
	}
}
