package f3d

import (
	"math"
	"testing"

	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/parloop"
)

// zonalConfig builds a split-zone configuration plus the matching
// single-zone configuration it should approximate.
func zonalConfig(t *testing.T) (split, single Config) {
	t.Helper()
	const n, kmax, lmax, at = 21, 9, 8, 10
	c, ifaces := SplitAlongJ("z", n, kmax, lmax, at)
	split = DefaultConfig(c)
	split.Interfaces = ifaces
	single = DefaultConfig(grid.Single(n, kmax, lmax))
	// Same time step for comparability (DefaultConfig derives dt from
	// the finest spacing, which matches here, but pin it anyway).
	split.Dt = single.Dt
	return split, single
}

// initPhysicalPulse sets a pulse as a function of the physical J index,
// so the split and single configurations hold the same initial field.
func initPhysicalPulse(s Solver, jOffsets []int, nPhys int, amp float64) {
	initPhysicalPulseAt(s, jOffsets, float64(nPhys-1)/2, amp)
}

func initPhysicalPulseAt(s Solver, jOffsets []int, cj float64, amp float64) {
	cfg := s.Config()
	InitUniform(s)
	for zi, zs := range s.Zones() {
		z := zs.Zone
		off := jOffsets[zi]
		ck := float64(z.KMax-1) / 2
		cl := float64(z.LMax-1) / 2
		for l := 0; l < z.LMax; l++ {
			for k := 0; k < z.KMax; k++ {
				for j := 0; j < z.JMax; j++ {
					dj := float64(j+off) - cj
					dk := float64(k) - ck
					dl := float64(l) - cl
					g := amp * math.Exp(-(dj*dj+dk*dk+dl*dl)/9)
					p := euler.Prim{
						Rho: cfg.Freestream.Rho * (1 + g),
						U:   cfg.Freestream.U, V: cfg.Freestream.V, W: cfg.Freestream.W,
						P: cfg.Freestream.P * (1 + g),
					}
					u := p.Cons()
					zs.Q.SetPoint(j, k, l, u[:])
				}
			}
		}
	}
}

func TestSplitAlongJGeometry(t *testing.T) {
	c, ifaces := SplitAlongJ("z", 21, 9, 8, 10)
	if len(c.Zones) != 2 || len(ifaces) != 1 {
		t.Fatalf("unexpected split: %d zones, %d interfaces", len(c.Zones), len(ifaces))
	}
	left, right := c.Zones[0], c.Zones[1]
	if left.JMax != 12 || right.JMax != 11 {
		t.Errorf("split dims: left J=%d right J=%d, want 12 and 11", left.JMax, right.JMax)
	}
	// Two-point overlap: left covers 0..11, right covers 10..20 →
	// total coverage = 21 physical points.
	if left.JMax+right.JMax-2 != 21 {
		t.Errorf("overlap arithmetic wrong: %d+%d-2 != 21", left.JMax, right.JMax)
	}
	// Spacing inherited from the parent grid, not renormalized.
	parent := grid.NewZone("p", 21, 9, 8)
	if left.DJ != parent.DJ || right.DJ != parent.DJ {
		t.Errorf("split zones renormalized spacing: %g, %g vs %g", left.DJ, right.DJ, parent.DJ)
	}
	for _, bad := range []int{1, 18} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("split=%d should panic", bad)
				}
			}()
			SplitAlongJ("z", 21, 9, 8, bad)
		}()
	}
}

func TestInterfaceValidation(t *testing.T) {
	c, _ := SplitAlongJ("z", 21, 9, 8, 10)
	cfg := DefaultConfig(c)
	cfg.Interfaces = []Interface{{Left: 0, Right: 5}}
	if err := cfg.Validate(); err == nil {
		t.Error("out-of-range zone accepted")
	}
	cfg.Interfaces = []Interface{{Left: 1, Right: 1}}
	if err := cfg.Validate(); err == nil {
		t.Error("self-coupling accepted")
	}
	// Face mismatch.
	bad := grid.Case{Zones: []grid.Zone{grid.NewZone("a", 8, 9, 8), grid.NewZone("b", 8, 7, 8)}}
	cfgBad := DefaultConfig(bad)
	cfgBad.Interfaces = []Interface{{Left: 0, Right: 1}}
	if err := cfgBad.Validate(); err == nil {
		t.Error("face mismatch accepted")
	}
}

func TestZonalUniformFlowPreservedExactly(t *testing.T) {
	split, _ := zonalConfig(t)
	for _, mk := range []struct {
		name string
		s    Solver
	}{
		{"cache", newCache(t, split, CacheOptions{})},
		{"vector", newVector(t, split)},
		{"block", newBlock(t, split, CacheOptions{})},
	} {
		InitUniform(mk.s)
		for i := 0; i < 4; i++ {
			st := mk.s.Step()
			if st.Residual != 0 || st.MaxDelta != 0 {
				t.Errorf("%s: zonal uniform flow drifted at step %d", mk.name, i)
				break
			}
		}
	}
}

func TestZonalVariantsAgreeBitwise(t *testing.T) {
	split, _ := zonalConfig(t)
	cs := newCache(t, split, CacheOptions{})
	vs := newVector(t, split)
	offsets := []int{0, 10}
	initPhysicalPulse(cs, offsets, 21, 0.03)
	initPhysicalPulse(vs, offsets, 21, 0.03)
	for i := 0; i < 6; i++ {
		sc := cs.Step()
		sv := vs.Step()
		if sc.Residual != sv.Residual {
			t.Fatalf("step %d: zonal residuals differ", i)
		}
	}
	if d := MaxPointwiseDiff(cs, vs); d != 0 {
		t.Fatalf("zonal variants differ by %g", d)
	}
}

func TestZonalSerialParallelAgreeBitwise(t *testing.T) {
	split, _ := zonalConfig(t)
	serial := newCache(t, split, CacheOptions{})
	team := parloop.NewTeam(3)
	defer team.Close()
	offsets := []int{0, 10}
	for _, merged := range []bool{false, true} {
		par := newCache(t, split, CacheOptions{Team: team, Phases: AllPhases(), Merged: merged})
		initPhysicalPulse(serial, offsets, 21, 0.03)
		initPhysicalPulse(par, offsets, 21, 0.03)
		for i := 0; i < 5; i++ {
			serial.Step()
			par.Step()
		}
		if d := MaxPointwiseDiff(serial, par); d != 0 {
			t.Fatalf("merged=%v: zonal serial/parallel differ by %g", merged, d)
		}
	}
}

func TestZonalApproximatesSingleZone(t *testing.T) {
	// The split grid with explicit interface exchange must track the
	// single-zone solution closely (the interface is time-lagged and
	// explicit, so agreement is approximate, not bitwise).
	split, single := zonalConfig(t)
	ss := newCache(t, split, CacheOptions{})
	us := newCache(t, single, CacheOptions{})
	// Center the pulse inside the left zone; it still radiates across
	// the interface at j=10..11 but is not pathologically centered on it.
	initPhysicalPulseAt(ss, []int{0, 10}, 6, 0.03)
	initPhysicalPulseAt(us, []int{0}, 6, 0.03)
	offsets := []int{0, 10}
	deviation := func() float64 {
		var worst float64
		uz := us.Zones()[0]
		var a, b [euler.NC]float64
		for zi, zs := range ss.Zones() {
			z := zs.Zone
			for l := 0; l < z.LMax; l++ {
				for k := 0; k < z.KMax; k++ {
					for j := 0; j < z.JMax; j++ {
						zs.Q.Point(j, k, l, a[:])
						uz.Q.Point(j+offsets[zi], k, l, b[:])
						for c := 0; c < euler.NC; c++ {
							if d := math.Abs(a[c] - b[c]); d > worst {
								worst = d
							}
						}
					}
				}
			}
		}
		return worst
	}
	for i := 0; i < 10; i++ {
		ss.Step()
		us.Step()
	}
	early := deviation()
	// The interface is explicit and time-lagged, and the near-interface
	// points use the boundary-form dissipation stencil: deviation is
	// bounded by a fraction of the pulse amplitude, not bitwise.
	if early > 1e-2 {
		t.Errorf("zonal solution deviates from single-zone by %g (want < 1e-2)", early)
	}
	if early == 0 {
		t.Error("zonal and single-zone runs identical — interface coupling suspiciously exact")
	}
	// Both converge to the same freestream steady state, so the
	// deviation dies out with the transient.
	for i := 0; i < 60; i++ {
		ss.Step()
		us.Step()
	}
	late := deviation()
	if late > early/3 {
		t.Errorf("interface-coupling deviation did not decay: %g -> %g", early, late)
	}
}

func TestZonalPulseDecays(t *testing.T) {
	split, _ := zonalConfig(t)
	s := newCache(t, split, CacheOptions{})
	initPhysicalPulse(s, []int{0, 10}, 21, 0.05)
	first := s.Step()
	var last StepStats
	for i := 0; i < 50; i++ {
		last = s.Step()
	}
	if last.Residual > first.Residual/5 {
		t.Errorf("zonal residual did not decay: %g -> %g", first.Residual, last.Residual)
	}
}
