package f3d

import "sync/atomic"

// StepShape is the executable form of an auto-parallelization plan for
// the cache solver's time step: which phases run inside parallel
// regions, whether the RHS region is fissioned into two independent
// regions, and whether the whole step is hoisted into one merged
// region (Example 3). Every shape computes the identical per-element
// operation order, so residual histories stay bitwise equal to the
// serial reference — the plan-conformance cells in internal/check
// prove this for each transform.
//
// The shape is deliberately lower-level than ParallelPhases: a plan
// may parallelize the RHS J/K passes while leaving the L pass serial
// (the fission-mixed-body transform), which ParallelPhases cannot
// express.
type StepShape struct {
	// RHSJK parallelizes the J/K right-hand-side passes; RHSL the L
	// pass. With FissionRHS false the two passes share one region (the
	// seed structure) and run parallel only when both flags are set.
	RHSJK bool `json:"rhs_jk"`
	RHSL  bool `json:"rhs_l"`
	// SweepJK and SweepL parallelize the implicit sweeps; BC the
	// boundary-condition pass.
	SweepJK bool `json:"sweep_jk"`
	SweepL  bool `json:"sweep_l"`
	BC      bool `json:"bc"`
	// FissionRHS splits the RHS into two regions — one per pass — so
	// each side can be parallel or serial independently. The passes
	// were separated by a barrier already, so fission changes only the
	// synchronization structure, never the arithmetic.
	FissionRHS bool `json:"fission_rhs"`
	// Merged hoists the step into a single region with barriers
	// between phases (Example 3), amortizing the fork-join cost across
	// every phase; the per-phase parallel flags are then subsumed
	// except BC, which still selects worker-partitioned vs
	// worker-0-serial boundary conditions.
	Merged bool `json:"merged"`
}

// ShapeFromPhases translates the ParallelPhases knob into the
// equivalent shape: the seed region structure, no fission.
func ShapeFromPhases(p ParallelPhases, merged bool) StepShape {
	return StepShape{
		RHSJK:   p.RHS,
		RHSL:    p.RHS,
		SweepJK: p.SweepJK,
		SweepL:  p.SweepL,
		BC:      p.BC,
		Merged:  merged,
	}
}

// Parallel reports whether any phase runs in a parallel region.
func (s StepShape) Parallel() bool {
	return s.RHSJK || s.RHSL || s.SweepJK || s.SweepL || s.BC || s.Merged
}

// ShapeCfg is the solver's shape reconfigure seam, mirroring
// parloop.LoopCfg: an atomically swappable StepShape that a planner
// (or a test harness) may retarget between steps while the solver
// runs. Step loads the shape once at step entry, so a mid-step Store
// takes effect at the next step boundary — exactly where resizes and
// adaptive re-picks already land.
type ShapeCfg struct {
	v atomic.Pointer[StepShape]
}

// NewShapeCfg returns a config holding s.
func NewShapeCfg(s StepShape) *ShapeCfg {
	c := &ShapeCfg{}
	c.Store(s)
	return c
}

// Store publishes a new shape; the solver adopts it at its next step.
func (c *ShapeCfg) Store(s StepShape) { c.v.Store(&s) }

// Load returns the current shape.
func (c *ShapeCfg) Load() StepShape { return *c.v.Load() }
