package f3d

import (
	"testing"
	"testing/quick"

	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/linalg"
)

func TestLineEnumerationCoversZone(t *testing.T) {
	// For each axis, iterating crossDims × lineLen must visit every
	// point of the zone exactly once.
	f := func(ju, ku, lu uint8) bool {
		z := grid.NewZone("z", int(ju%8)+3, int(ku%8)+3, int(lu%8)+3)
		for _, ax := range []euler.Axis{euler.X, euler.Y, euler.Z} {
			seen := make([]int, z.Points())
			outer, inner := crossDims(&z, ax)
			n := lineLen(&z, ax)
			for o := 0; o < outer; o++ {
				for in := 0; in < inner; in++ {
					a, b := crossIndex(ax, o, in)
					for i := 0; i < n; i++ {
						j, k, l := lineIndex(ax, i, a, b)
						seen[z.Index(j, k, l)]++
					}
				}
			}
			for _, c := range seen {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLoadStoreLineRoundTrip(t *testing.T) {
	z := grid.NewZone("z", 6, 5, 4)
	for _, layout := range []grid.Layout{grid.ComponentMajor, grid.PointMajor} {
		for _, ax := range []euler.Axis{euler.X, euler.Y, euler.Z} {
			f := grid.NewStateField(&z, euler.NC, layout)
			for i := range f.Data {
				f.Data[i] = float64(i + 1)
			}
			n := lineLen(&z, ax)
			buf := make([]linalg.Vec5, n)
			loadLine(&f, ax, 1, 2, buf, n)
			// Verify against direct indexing.
			var want [euler.NC]float64
			for i := 0; i < n; i++ {
				j, k, l := lineIndex(ax, i, 1, 2)
				f.Point(j, k, l, want[:])
				if [euler.NC]float64(buf[i]) != want {
					t.Fatalf("%v %v: line point %d mismatch", layout, ax, i)
				}
			}
			// storeLineInterior writes back interior only.
			for i := range buf {
				for c := range buf[i] {
					buf[i][c] = -buf[i][c]
				}
			}
			storeLineInterior(&f, ax, 1, 2, buf, n)
			var got [euler.NC]float64
			j, k, l := lineIndex(ax, 0, 1, 2)
			f.Point(j, k, l, got[:])
			for c := 0; c < euler.NC; c++ {
				if got[c] < 0 {
					t.Fatalf("%v %v: boundary point was overwritten", layout, ax)
				}
			}
			j, k, l = lineIndex(ax, 1, 1, 2)
			f.Point(j, k, l, got[:])
			for c := 0; c < euler.NC; c++ {
				if got[c] > 0 {
					t.Fatalf("%v %v: interior point not stored", layout, ax)
				}
			}
		}
	}
}

func TestLineHelpersPanicOnBadAxis(t *testing.T) {
	z := grid.NewZone("z", 4, 4, 4)
	bad := euler.Axis(7)
	for name, fn := range map[string]func(){
		"lineLen":    func() { lineLen(&z, bad) },
		"lineIndex":  func() { lineIndex(bad, 0, 0, 0) },
		"crossDims":  func() { crossDims(&z, bad) },
		"crossIndex": func() { crossIndex(bad, 0, 0) },
		"spacing":    func() { spacing(&z, bad) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStepProfileForStructure(t *testing.T) {
	c := grid.Paper1M()
	full := StepProfileFor(c, AllPhases())
	// 4 parallel classes per zone with BC serial.
	if got, want := len(full.Loops), 4*len(c.Zones); got != want {
		t.Fatalf("loop classes = %d, want %d", got, want)
	}
	if full.SerialCycles <= 0 {
		t.Error("BC+residual serial work missing")
	}
	// All-serial profile folds everything into SerialCycles.
	serial := StepProfileFor(c, ParallelPhases{})
	if len(serial.Loops) != 0 {
		t.Errorf("serial profile has %d loop classes", len(serial.Loops))
	}
	if serial.TotalCycles() != full.TotalCycles() {
		t.Errorf("total work changed with phase selection: %g vs %g",
			serial.TotalCycles(), full.TotalCycles())
	}
	// Parallelism of the sweep-jk classes is the zone's interior L
	// count; rhs-l and sweep-l use interior K.
	for _, lc := range full.Loops {
		switch {
		case lc.Parallelism <= 0:
			t.Errorf("class %s has no parallelism", lc.Name)
		case lc.SyncEvents != 1:
			t.Errorf("class %s has %d sync events, want 1", lc.Name, lc.SyncEvents)
		}
	}
	// Enabling BC moves its work out of SerialCycles.
	withBC := AllPhases()
	withBC.BC = true
	bc := StepProfileFor(c, withBC)
	if bc.SerialCycles >= full.SerialCycles {
		t.Error("parallelizing BC did not reduce serial work")
	}
}

func TestStepProfileF3DStructure(t *testing.T) {
	c := grid.Paper59M()
	sp := StepProfileF3D(c, 4700, 0.004)
	if got, want := len(sp.Loops), 4*len(c.Zones); got != want {
		t.Fatalf("loop classes = %d, want %d", got, want)
	}
	if got, want := sp.TotalCycles(), 4700.0*float64(c.Points()); got != want {
		t.Errorf("total work = %g, want %g", got, want)
	}
	// The implicit classes carry J-limited parallelism.
	seen := map[int]bool{}
	for _, lc := range sp.Loops {
		seen[lc.Parallelism] = true
	}
	for _, j := range []int{29, 173, 175} {
		if !seen[j] {
			t.Errorf("no loop class with J parallelism %d", j)
		}
	}
	for name, fn := range map[string]func(){
		"workPerPoint": func() { StepProfileF3D(c, 0, 0.1) },
		"serialFrac":   func() { StepProfileF3D(c, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
