package f3d

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/parloop"
)

func stretchedConfig() Config {
	z := grid.StretchedZone("bl", 11, 10, 12, 1.2, 0, 1.8)
	cfg := DefaultConfig(grid.Case{Name: "stretched", Zones: []grid.Zone{z}})
	return cfg
}

func TestStretchCoords(t *testing.T) {
	x := grid.StretchCoords(21, 2)
	if x[0] != 0 || x[20] != 1 {
		t.Fatalf("endpoints not pinned: %g, %g", x[0], x[20])
	}
	// Strictly increasing; clustered toward both ends (first gap well
	// below the center gap); symmetric.
	for i := 1; i < len(x); i++ {
		if x[i] <= x[i-1] {
			t.Fatalf("coords not increasing at %d", i)
		}
	}
	first := x[1] - x[0]
	center := x[11] - x[10]
	if first >= center/2 {
		t.Errorf("no clustering: first gap %g vs center gap %g", first, center)
	}
	for i := range x {
		if math.Abs(x[i]+x[len(x)-1-i]-1) > 1e-12 {
			t.Errorf("coords not symmetric at %d", i)
		}
	}
	// beta = 0 is uniform.
	u := grid.StretchCoords(5, 0)
	for i, v := range u {
		if math.Abs(v-float64(i)/4) > 1e-15 {
			t.Errorf("beta=0 not uniform: %v", u)
		}
	}
}

func TestStretchedZoneMetadata(t *testing.T) {
	z := grid.StretchedZone("z", 9, 8, 7, 1.5, 0, 2)
	if !z.Stretched() {
		t.Fatal("zone should report stretched")
	}
	if z.XK != nil {
		t.Error("K direction should remain uniform")
	}
	// DJ is the minimum local spacing — below the uniform value.
	if z.DJ >= 1.0/8 {
		t.Errorf("stretched DJ = %g, should be below uniform %g", z.DJ, 1.0/8)
	}
	uz5 := grid.NewZone("u", 5, 5, 5)
	if uz5.Stretched() {
		t.Error("uniform zone reports stretched")
	}
	// Coords materialize for uniform directions.
	ck := z.CoordsK()
	if len(ck) != 8 || math.Abs(ck[1]-1.0/7) > 1e-15 {
		t.Errorf("CoordsK wrong: %v", ck)
	}
}

func TestStretchedUniformFlowPreservedExactly(t *testing.T) {
	cfg := stretchedConfig()
	for _, mk := range []struct {
		name string
		s    Solver
	}{
		{"cache", newCache(t, cfg, CacheOptions{})},
		{"vector", newVector(t, cfg)},
		{"block", newBlock(t, cfg, CacheOptions{})},
	} {
		InitUniform(mk.s)
		for i := 0; i < 4; i++ {
			st := mk.s.Step()
			if st.Residual != 0 || st.MaxDelta != 0 {
				t.Errorf("%s: stretched uniform flow drifted at step %d (res %g)", mk.name, i, st.Residual)
				break
			}
		}
	}
}

func TestStretchedVariantsAgreeBitwise(t *testing.T) {
	cfg := stretchedConfig()
	cfg.Viscous, cfg.Re = true, 400
	cs := newCache(t, cfg, CacheOptions{})
	vs := newVector(t, cfg)
	InitPulse(cs, 0.02)
	InitPulse(vs, 0.02)
	for i := 0; i < 6; i++ {
		a := cs.Step()
		b := vs.Step()
		if a.Residual != b.Residual {
			t.Fatalf("step %d: stretched residuals differ", i)
		}
	}
	if d := MaxPointwiseDiff(cs, vs); d != 0 {
		t.Fatalf("stretched variants differ by %g", d)
	}
}

func TestStretchedSerialParallelAgreeBitwise(t *testing.T) {
	cfg := stretchedConfig()
	serial := newCache(t, cfg, CacheOptions{})
	team := parloop.NewTeam(3)
	defer team.Close()
	par := newCache(t, cfg, CacheOptions{Team: team, Phases: AllPhases()})
	InitPulse(serial, 0.02)
	InitPulse(par, 0.02)
	for i := 0; i < 5; i++ {
		serial.Step()
		par.Step()
	}
	if d := MaxPointwiseDiff(serial, par); d != 0 {
		t.Fatalf("stretched serial/parallel differ by %g", d)
	}
}

func TestStretchedPulseDecays(t *testing.T) {
	cfg := stretchedConfig()
	s := newCache(t, cfg, CacheOptions{})
	InitPulse(s, 0.04)
	first := s.Step()
	var last StepStats
	for i := 0; i < 80; i++ {
		last = s.Step()
		if math.IsNaN(last.Residual) {
			t.Fatalf("stretched run blew up at step %d", i)
		}
	}
	if last.Residual > first.Residual/5 {
		t.Errorf("stretched residual did not decay: %g -> %g", first.Residual, last.Residual)
	}
}

func TestStretchedMatchesUniformWhenCoordsUniform(t *testing.T) {
	// A zone whose coordinate arrays encode uniform spacing must produce
	// (nearly) the uniform-path results: the expressions differ only by
	// reciprocal-vs-division rounding.
	const n = 10
	uz := grid.NewZone("u", n, 9, 8)
	sz := uz
	sz.XJ = grid.StretchCoords(n, 0) // uniform coords through the geom path
	uCfg := DefaultConfig(grid.Case{Name: "u", Zones: []grid.Zone{uz}})
	sCfg := DefaultConfig(grid.Case{Name: "s", Zones: []grid.Zone{sz}})
	sCfg.Dt = uCfg.Dt
	us := newCache(t, uCfg, CacheOptions{})
	ss := newCache(t, sCfg, CacheOptions{})
	InitPulse(us, 0.02)
	InitPulse(ss, 0.02)
	for i := 0; i < 5; i++ {
		us.Step()
		ss.Step()
	}
	if d := MaxPointwiseDiff(us, ss); d > 1e-11 {
		t.Errorf("uniform-coded stretch path deviates from uniform path by %g", d)
	}
}

func TestStretchedInterfaceRejected(t *testing.T) {
	z1 := grid.StretchedZone("a", 8, 8, 8, 1, 0, 0)
	z2 := grid.StretchedZone("b", 8, 8, 8, 1, 0, 0)
	cfg := DefaultConfig(grid.Case{Zones: []grid.Zone{z1, z2}})
	cfg.Interfaces = []Interface{{Left: 0, Right: 1}}
	if err := cfg.Validate(); err == nil {
		t.Error("stretched zones at an interface should be rejected")
	}
}

func TestStretchedViscousShearDecay(t *testing.T) {
	// The viscous terms on a stretched L direction (boundary-layer
	// clustering) still damp a shear profile.
	z := grid.StretchedZone("bl", 9, 9, 13, 0, 0, 2)
	cfg := DefaultConfig(grid.Case{Name: "blv", Zones: []grid.Zone{z}})
	cfg.Viscous, cfg.Re = true, 100
	s := newCache(t, cfg, CacheOptions{})
	initShear(s, 0.05)
	e0 := shearEnergy(s)
	for i := 0; i < 25; i++ {
		st := s.Step()
		if math.IsNaN(st.Residual) {
			t.Fatalf("stretched viscous run blew up at step %d", i)
		}
	}
	if e1 := shearEnergy(s); e1 >= e0 {
		t.Errorf("shear energy did not decay on stretched grid: %g -> %g", e0, e1)
	}
}
