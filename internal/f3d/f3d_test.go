package f3d

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/parloop"
)

func testConfig(jmax, kmax, lmax int) Config {
	return DefaultConfig(grid.Single(jmax, kmax, lmax))
}

func newCache(t *testing.T, cfg Config, opts CacheOptions) *CacheSolver {
	t.Helper()
	s, err := NewCacheSolver(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func newVector(t *testing.T, cfg Config) *VectorSolver {
	t.Helper()
	s, err := NewVectorSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUniformFlowPreservedExactly(t *testing.T) {
	// Freestream initial data is an exact steady solution: the RHS is
	// identically zero and the solution must not change by a single bit.
	cfg := testConfig(9, 8, 7)
	for _, mk := range []struct {
		name string
		s    Solver
	}{
		{"cache-serial", newCache(t, cfg, CacheOptions{})},
		{"vector", newVector(t, cfg)},
	} {
		InitUniform(mk.s)
		want := cfg.Freestream.Cons()
		for step := 0; step < 5; step++ {
			st := mk.s.Step()
			if st.Residual != 0 {
				t.Errorf("%s step %d: residual %g, want exactly 0", mk.name, step, st.Residual)
			}
			if st.MaxDelta != 0 {
				t.Errorf("%s step %d: max delta %g, want exactly 0", mk.name, step, st.MaxDelta)
			}
		}
		zs := mk.s.Zones()[0]
		var buf [euler.NC]float64
		z := zs.Zone
		for l := 0; l < z.LMax; l++ {
			for k := 0; k < z.KMax; k++ {
				for j := 0; j < z.JMax; j++ {
					zs.Q.Point(j, k, l, buf[:])
					for c := 0; c < euler.NC; c++ {
						if buf[c] != want[c] {
							t.Fatalf("%s: point (%d,%d,%d) comp %d drifted: %g != %g",
								mk.name, j, k, l, c, buf[c], want[c])
						}
					}
				}
			}
		}
	}
}

func TestVectorAndCacheVariantsAgreeBitwise(t *testing.T) {
	// The paper requires parallelization and tuning "without introducing
	// any changes to the algorithm": the two code shapes must produce
	// identical floating-point results.
	cfg := testConfig(10, 9, 8)
	cs := newCache(t, cfg, CacheOptions{})
	vs := newVector(t, cfg)
	InitPulse(cs, 0.01)
	InitPulse(vs, 0.01)
	for step := 0; step < 8; step++ {
		sc := cs.Step()
		sv := vs.Step()
		if sc.Residual != sv.Residual {
			t.Fatalf("step %d: residuals differ: cache %.17g vs vector %.17g", step, sc.Residual, sv.Residual)
		}
		if d := MaxPointwiseDiff(cs, vs); d != 0 {
			t.Fatalf("step %d: solutions differ by %g", step, d)
		}
	}
}

func TestSerialAndParallelAgreeBitwise(t *testing.T) {
	cfg := testConfig(11, 9, 8)
	ref := newCache(t, cfg, CacheOptions{})
	InitPulse(ref, 0.01)
	refStats := make([]StepStats, 6)
	for i := range refStats {
		refStats[i] = ref.Step()
	}
	for _, workers := range []int{2, 3, 5} {
		for _, merged := range []bool{false, true} {
			team := parloop.NewTeam(workers)
			s := newCache(t, cfg, CacheOptions{Team: team, Phases: AllPhases(), Merged: merged})
			InitPulse(s, 0.01)
			for i := range refStats {
				st := s.Step()
				if st.Residual != refStats[i].Residual {
					t.Errorf("workers=%d merged=%v step %d: residual %.17g != serial %.17g",
						workers, merged, i, st.Residual, refStats[i].Residual)
				}
				if st.MaxDelta != refStats[i].MaxDelta {
					t.Errorf("workers=%d merged=%v step %d: maxDelta %.17g != serial %.17g",
						workers, merged, i, st.MaxDelta, refStats[i].MaxDelta)
				}
			}
			if d := MaxPointwiseDiff(ref, s); d != 0 {
				t.Errorf("workers=%d merged=%v: solution differs from serial by %g", workers, merged, d)
			}
			team.Close()
		}
	}
}

func TestIncrementalParallelizationPreservesResults(t *testing.T) {
	// The paper parallelizes loops one at a time, validating at each
	// stage. Every subset of parallel phases must give the serial answer.
	cfg := testConfig(9, 8, 7)
	ref := newCache(t, cfg, CacheOptions{})
	InitPulse(ref, 0.02)
	for i := 0; i < 4; i++ {
		ref.Step()
	}
	phaseSets := []ParallelPhases{
		{},
		{RHS: true},
		{RHS: true, SweepJK: true},
		{RHS: true, SweepJK: true, SweepL: true},
		{RHS: true, SweepJK: true, SweepL: true, BC: true},
		{BC: true},
		{SweepL: true},
	}
	team := parloop.NewTeam(3)
	defer team.Close()
	for _, ph := range phaseSets {
		s := newCache(t, cfg, CacheOptions{Team: team, Phases: ph})
		InitPulse(s, 0.02)
		for i := 0; i < 4; i++ {
			s.Step()
		}
		if d := MaxPointwiseDiff(ref, s); d != 0 {
			t.Errorf("phases %+v: solution differs from serial by %g", ph, d)
		}
	}
}

func TestPulseDecaysTowardFreestream(t *testing.T) {
	// The implicit scheme must damp a smooth disturbance: the residual
	// after many steps is far below the initial residual (steady-state
	// convergence, the property the paper insists must be preserved).
	cfg := testConfig(12, 11, 10)
	s := newCache(t, cfg, CacheOptions{})
	InitPulse(s, 0.05)
	first := s.Step()
	if first.Residual <= 0 {
		t.Fatal("pulse produced zero residual")
	}
	var last StepStats
	for i := 0; i < 60; i++ {
		last = s.Step()
		if math.IsNaN(last.Residual) || math.IsInf(last.Residual, 0) {
			t.Fatalf("step %d: residual blew up: %g", i, last.Residual)
		}
	}
	if last.Residual > first.Residual/10 {
		t.Errorf("residual did not decay: first %g, after 60 steps %g", first.Residual, last.Residual)
	}
}

func TestExtrapolateBCStable(t *testing.T) {
	cfg := testConfig(9, 8, 7)
	cfg.BC = BCExtrapolate
	s := newCache(t, cfg, CacheOptions{})
	InitPulse(s, 0.02)
	for i := 0; i < 30; i++ {
		st := s.Step()
		if math.IsNaN(st.Residual) {
			t.Fatalf("step %d: NaN residual with extrapolation BC", i)
		}
	}
}

func TestMinimalZoneDimensions(t *testing.T) {
	// 3×3×3 has a single interior point: every sweep degenerates to a
	// 1×1 system. The solver must handle it without panicking.
	cfg := testConfig(3, 3, 3)
	cs := newCache(t, cfg, CacheOptions{})
	vs := newVector(t, cfg)
	InitPulse(cs, 0.01)
	InitPulse(vs, 0.01)
	for i := 0; i < 3; i++ {
		sc := cs.Step()
		sv := vs.Step()
		if sc.Residual != sv.Residual {
			t.Fatalf("step %d: variants disagree on 3³ zone", i)
		}
	}
}

func TestMultiZoneCase(t *testing.T) {
	c := grid.Scaled(grid.Paper1M(), 0.12) // three zones ≈ 11×9×8 max
	cfg := DefaultConfig(c)
	team := parloop.NewTeam(4)
	defer team.Close()
	serial := newCache(t, cfg, CacheOptions{})
	par := newCache(t, cfg, CacheOptions{Team: team, Phases: AllPhases()})
	InitPulse(serial, 0.02)
	InitPulse(par, 0.02)
	for i := 0; i < 4; i++ {
		ss := serial.Step()
		sp := par.Step()
		if ss.Residual != sp.Residual {
			t.Fatalf("step %d: multi-zone serial/parallel residual mismatch", i)
		}
	}
	if d := MaxPointwiseDiff(serial, par); d != 0 {
		t.Fatalf("multi-zone solution mismatch: %g", d)
	}
	if len(serial.Zones()) != 3 {
		t.Fatalf("expected 3 zones, got %d", len(serial.Zones()))
	}
}

func TestConservationApproximate(t *testing.T) {
	// With freestream Dirichlet boundaries and a small internal pulse,
	// total conserved quantities change only slowly (the pulse drains
	// through the boundary): sanity check against gross conservation
	// bugs.
	cfg := testConfig(12, 10, 9)
	s := newCache(t, cfg, CacheOptions{})
	InitPulse(s, 0.01)
	before := s.Zones()[0].totalConserved()
	for i := 0; i < 10; i++ {
		s.Step()
	}
	after := s.Zones()[0].totalConserved()
	for c := 0; c < euler.NC; c++ {
		rel := math.Abs(after[c]-before[c]) / math.Max(1, math.Abs(before[c]))
		if rel > 0.01 {
			t.Errorf("component %d drifted %.3g%% in 10 steps", c, rel*100)
		}
	}
}

func TestStepStatsFlops(t *testing.T) {
	cfg := testConfig(9, 8, 7)
	s := newCache(t, cfg, CacheOptions{})
	InitUniform(s)
	st := s.Step()
	wantInterior := float64((9 - 2) * (8 - 2) * (7 - 2))
	if got, want := st.Flops, wantInterior*FlopsPerPoint(); got != want {
		t.Errorf("Flops = %g, want %g", got, want)
	}
	if s.Steps() != 1 {
		t.Errorf("Steps = %d, want 1", s.Steps())
	}
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(5, 5, 5)
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.Dt = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero Dt accepted")
	}
	bad = good
	bad.Freestream.Rho = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative density accepted")
	}
	bad = good
	bad.Eps4 = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative dissipation accepted")
	}
	bad = good
	bad.BC = BCKind(42)
	if err := bad.Validate(); err == nil {
		t.Error("unknown BC accepted")
	}
	bad = good
	bad.Case.Zones = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty case accepted")
	}
	if _, err := NewCacheSolver(bad, CacheOptions{}); err == nil {
		t.Error("NewCacheSolver accepted bad config")
	}
	if _, err := NewVectorSolver(bad); err == nil {
		t.Error("NewVectorSolver accepted bad config")
	}
}

func TestEstimateDt(t *testing.T) {
	cfg := testConfig(9, 8, 7)
	dt1 := EstimateDt(&cfg, 1)
	dt2 := EstimateDt(&cfg, 2)
	if dt1 <= 0 || dt2 != 2*dt1 {
		t.Errorf("EstimateDt not linear in CFL: %g, %g", dt1, dt2)
	}
	defer func() {
		if recover() == nil {
			t.Error("EstimateDt cfl<=0 should panic")
		}
	}()
	EstimateDt(&cfg, 0)
}

func TestSyncEventAccounting(t *testing.T) {
	// Per-phase mode opens 3 regions + 1 barrier per zone per step
	// (BC serial); merged mode opens 1 region + 5 barriers.
	cfg := testConfig(9, 8, 7)
	team := parloop.NewTeam(2)
	defer team.Close()

	s := newCache(t, cfg, CacheOptions{Team: team, Phases: AllPhases()})
	InitUniform(s)
	team.ResetSyncEvents()
	s.Step()
	if got := team.SyncEvents(); got != 4 {
		t.Errorf("per-phase sync events = %d, want 4 (3 regions + 1 barrier)", got)
	}

	m := newCache(t, cfg, CacheOptions{Team: team, Phases: AllPhases(), Merged: true})
	InitUniform(m)
	team.ResetSyncEvents()
	m.Step()
	if got := team.SyncEvents(); got != 6 {
		t.Errorf("merged sync events = %d, want 6 (1 region + 5 barriers)", got)
	}
}

func TestBCKindString(t *testing.T) {
	if BCFreestream.String() != "freestream" || BCExtrapolate.String() != "extrapolate" {
		t.Error("BCKind strings wrong")
	}
	if BCKind(9).String() != "BCKind(9)" {
		t.Error("unknown BCKind string wrong")
	}
}

func TestSolverPanicsOnCorruptState(t *testing.T) {
	// Failure injection: a non-physical state (negative density) must
	// stop the run with a clear panic, not propagate NaNs silently.
	cfg := testConfig(8, 8, 8)
	s := newCache(t, cfg, CacheOptions{})
	InitUniform(s)
	s.Step()
	zs := s.Zones()[0]
	bad := [euler.NC]float64{-1, 0, 0, 0, 1}
	zs.Q.SetPoint(3, 3, 3, bad[:])
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupt state did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "density") {
			t.Errorf("panic message not diagnostic: %v", r)
		}
	}()
	s.Step()
}
