package f3d

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/parloop"
)

func TestShapeFromPhasesAndParallel(t *testing.T) {
	sh := ShapeFromPhases(ParallelPhases{RHS: true, SweepJK: true}, false)
	want := StepShape{RHSJK: true, RHSL: true, SweepJK: true}
	if sh != want {
		t.Fatalf("shape = %+v, want %+v", sh, want)
	}
	if !sh.Parallel() {
		t.Error("shape with regions reported serial")
	}
	if (StepShape{}).Parallel() {
		t.Error("empty shape reported parallel")
	}
	if !(StepShape{Merged: true}).Parallel() {
		t.Error("merged shape reported serial")
	}
}

func TestShapeCfgStoreLoad(t *testing.T) {
	c := NewShapeCfg(StepShape{RHSJK: true})
	if got := c.Load(); !got.RHSJK || got.RHSL {
		t.Fatalf("initial shape = %+v", got)
	}
	c.Store(StepShape{Merged: true})
	if got := c.Load(); !got.Merged || got.RHSJK {
		t.Fatalf("stored shape = %+v", got)
	}
}

// Every plan-expressible shape — fissioned RHS, mixed fission, partial
// serial phases, merged — must reproduce the serial reference's
// residual history and flow state bitwise. The check registry proves
// this across its full matrix; this is the solver-local fast version.
func TestShapedStepsMatchSerialBitwise(t *testing.T) {
	cfg := testConfig(10, 9, 8)
	ref := newCache(t, cfg, CacheOptions{})
	InitPulse(ref, 0.01)
	refStats := make([]StepStats, 5)
	for i := range refStats {
		refStats[i] = ref.Step()
	}

	shapes := map[string]StepShape{
		"fission-both": {RHSJK: true, RHSL: true, SweepJK: true, SweepL: true, BC: true, FissionRHS: true},
		"fission-jk":   {RHSJK: true, SweepJK: true, FissionRHS: true},
		"fission-l":    {RHSL: true, SweepL: true, FissionRHS: true},
		"rhs-serial":   {SweepJK: true, SweepL: true, BC: true},
		"merged":       {Merged: true, RHSJK: true, RHSL: true, SweepJK: true, SweepL: true, BC: true},
		"all-serial":   {},
	}
	for name, sh := range shapes {
		for _, workers := range []int{2, 4} {
			team := parloop.NewTeam(workers)
			s := newCache(t, cfg, CacheOptions{Team: team, Phases: AllPhases(), Shape: NewShapeCfg(sh)})
			InitPulse(s, 0.01)
			for i := range refStats {
				st := s.Step()
				if st.Residual != refStats[i].Residual || st.MaxDelta != refStats[i].MaxDelta {
					t.Fatalf("%s workers=%d step %d: history drifted: %.17g vs %.17g",
						name, workers, i, st.Residual, refStats[i].Residual)
				}
			}
			if d := MaxPointwiseDiff(s, ref); d != 0 {
				t.Fatalf("%s workers=%d: final state differs by %g", name, workers, d)
			}
			team.Close()
		}
	}
}

// A mid-run ShapeCfg retarget takes effect at the next step boundary
// and never changes the answer — the applied-plan seam.
func TestShapeRetargetMidRunBitwise(t *testing.T) {
	cfg := testConfig(10, 9, 8)
	ref := newCache(t, cfg, CacheOptions{})
	InitPulse(ref, 0.01)

	team := parloop.NewTeam(3)
	defer team.Close()
	shc := NewShapeCfg(StepShape{RHSJK: true, FissionRHS: true})
	s := newCache(t, cfg, CacheOptions{Team: team, Phases: AllPhases(), Shape: shc})
	InitPulse(s, 0.01)
	for i := 0; i < 6; i++ {
		if i == 2 {
			shc.Store(StepShape{Merged: true, RHSJK: true, RHSL: true, SweepJK: true, SweepL: true, BC: true})
		}
		if i == 4 {
			shc.Store(StepShape{SweepJK: true, SweepL: true})
		}
		want := ref.Step()
		got := s.Step()
		if got.Residual != want.Residual {
			t.Fatalf("step %d: residual drifted under retarget: %.17g vs %.17g", i, got.Residual, want.Residual)
		}
	}
	if d := MaxPointwiseDiff(s, ref); d != 0 {
		t.Fatalf("final state differs by %g", d)
	}
}

// Shape reports the shape the current/last step actually ran, not a
// mid-step retarget.
func TestSolverShapeReportsCurrentStep(t *testing.T) {
	cfg := testConfig(6, 5, 4)
	team := parloop.NewTeam(2)
	defer team.Close()
	shc := NewShapeCfg(StepShape{RHSJK: true, RHSL: true})
	s := newCache(t, cfg, CacheOptions{Team: team, Phases: AllPhases(), Shape: shc})
	InitPulse(s, 0.01)
	if got := s.Shape(); !got.RHSJK {
		t.Fatalf("pre-step shape = %+v", got)
	}
	s.Step()
	shc.Store(StepShape{SweepJK: true})
	if got := s.Shape(); !got.RHSJK || got.SweepJK {
		t.Fatalf("Shape() after retarget reports the pending shape: %+v", got)
	}
	s.Step()
	if got := s.Shape(); !got.SweepJK || got.RHSJK {
		t.Fatalf("Shape() after step did not adopt the retarget: %+v", got)
	}
}

// PhaseTrace labels each phase "<prefix>/<phase>" on the team's tracer
// and restores the team label afterwards, so a traced run yields
// per-phase loops for the planner.
func TestPhaseTraceLabelsPhases(t *testing.T) {
	cfg := testConfig(8, 7, 6)
	tr := obs.NewTracer(1<<14, nil)
	tr.Enable()
	team := parloop.NewTeam(3)
	defer team.Close()
	team.SetTracer(tr, "jobX")
	s := newCache(t, cfg, CacheOptions{Team: team, Phases: AllPhases(), PhaseTrace: "jobX"})
	defer s.Close()
	InitPulse(s, 0.01)
	for i := 0; i < 2; i++ {
		s.Step()
	}
	if got := team.Label(); got != "jobX" {
		t.Fatalf("team label not restored after step: %q", got)
	}
	seen := map[string]bool{}
	for _, e := range tr.Events() {
		if strings.HasPrefix(e.Name, "jobX/") {
			seen[strings.TrimPrefix(e.Name, "jobX/")] = true
		}
	}
	// bc is absent: AllPhases leaves it serial (§3, too cheap to
	// amortize a region), and serial phases emit no region events.
	for _, phase := range []string{"rhs", "sweep-jk", "sweep-l"} {
		if !seen[phase] {
			t.Errorf("phase %q not traced (saw %v)", phase, seen)
		}
	}
	if seen["bc"] {
		t.Error("serial bc phase emitted region events")
	}

	// Fission splits the trace into rhs-jk / rhs-l loops.
	tr2 := obs.NewTracer(1<<14, nil)
	tr2.Enable()
	team2 := parloop.NewTeam(3)
	defer team2.Close()
	team2.SetTracer(tr2, "jobY")
	s2 := newCache(t, cfg, CacheOptions{
		Team: team2, Phases: AllPhases(), PhaseTrace: "jobY",
		Shape: NewShapeCfg(StepShape{RHSJK: true, RHSL: true, SweepJK: true, SweepL: true, BC: true, FissionRHS: true}),
	})
	defer s2.Close()
	InitPulse(s2, 0.01)
	s2.Step()
	seen2 := map[string]bool{}
	for _, e := range tr2.Events() {
		seen2[e.Name] = true
	}
	if !seen2["jobY/rhs-jk"] || !seen2["jobY/rhs-l"] {
		t.Errorf("fissioned phases not traced separately: %v", seen2)
	}
}

// A merged step traces as one "step" loop.
func TestPhaseTraceMergedStep(t *testing.T) {
	cfg := testConfig(8, 7, 6)
	tr := obs.NewTracer(1<<14, nil)
	tr.Enable()
	team := parloop.NewTeam(3)
	defer team.Close()
	team.SetTracer(tr, "jobZ")
	s := newCache(t, cfg, CacheOptions{Team: team, Phases: AllPhases(), Merged: true, PhaseTrace: "jobZ"})
	defer s.Close()
	InitPulse(s, 0.01)
	s.Step()
	found := false
	for _, e := range tr.Events() {
		if e.Name == "jobZ/step" {
			found = true
		}
	}
	if !found {
		t.Error("merged step not traced as jobZ/step")
	}
}
