package f3d

import (
	"repro/internal/euler"
	"repro/internal/grid"
)

// Per-axis metric coefficients for nonuniform (stretched) grids. For
// uniform directions the geom pointer is nil and the kernels use the
// scalar-spacing expressions unchanged — preserving the bitwise
// guarantees of uniform runs exactly.
type axisGeom struct {
	// inv2h[i] = 1/(x_{i+1} − x_{i−1}), the central-difference metric at
	// interior point i.
	inv2h []float64
	// invh[i] = 2/(x_{i+1} − x_{i−1}) = 1/h_i with h_i the local
	// half-stencil width, scaling dissipation and viscous divergences.
	invh []float64
	// invdm[i] = 1/(x_{i+1} − x_i), the midpoint-derivative metric
	// (valid for i = 0..n−2).
	invdm []float64
}

// newAxisGeom precomputes the metric arrays for one coordinate line.
func newAxisGeom(x []float64) *axisGeom {
	n := len(x)
	g := &axisGeom{
		inv2h: make([]float64, n),
		invh:  make([]float64, n),
		invdm: make([]float64, n),
	}
	for i := 1; i < n-1; i++ {
		d := x[i+1] - x[i-1]
		g.inv2h[i] = 1 / d
		g.invh[i] = 2 / d
	}
	for i := 0; i < n-1; i++ {
		g.invdm[i] = 1 / (x[i+1] - x[i])
	}
	return g
}

// zoneGeom holds the per-axis geometry of one zone; entries are nil for
// uniform directions.
type zoneGeom [3]*axisGeom

// newZoneGeom builds metric arrays for the stretched directions of z.
func newZoneGeom(z *grid.Zone) zoneGeom {
	var g zoneGeom
	if z.XJ != nil {
		g[euler.X] = newAxisGeom(z.XJ)
	}
	if z.XK != nil {
		g[euler.Y] = newAxisGeom(z.XK)
	}
	if z.XL != nil {
		g[euler.Z] = newAxisGeom(z.XL)
	}
	return g
}

// viscousImplicitRowVar is viscousImplicitRow on a nonuniform line:
// the conservative diffusion stencil
//
//	da = −dt·ν·invdm_{i−1}·invh_i
//	db = +dt·ν·(invdm_{i−1}+invdm_i)·invh_i
//	dc = −dt·ν·invdm_i·invh_i
//
// which reduces to (−f, 2f, −f), f = dt·ν/h², on uniform spacing.
func viscousImplicitRowVar(dt, re, rho, invdmPrev, invdmCur, invh float64) (da, db, dc float64) {
	nu := dt / (re * rho) * invh
	return -nu * invdmPrev, nu * (invdmPrev + invdmCur), -nu * invdmCur
}
