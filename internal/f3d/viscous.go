package f3d

import (
	"repro/internal/euler"
	"repro/internal/linalg"
)

// Thin-layer viscous terms. F3D solves the thin-layer Navier–Stokes
// equations: viscous derivatives are retained only in the body-normal
// direction (here the L/z direction), which keeps the implicit factor
// count at three while capturing boundary-layer physics. The paper
// notes implicit codes "do more work per time step" than explicit ones
// (§4 footnote) — the viscous terms are part of that work.
//
// Nondimensionalization: constant unit viscosity, Reynolds number Re,
// Prandtl number Pr. The thin-layer viscous flux at a z-midpoint is
//
//	S = 1/Re · [ 0,
//	             u_z,
//	             v_z,
//	             (4/3) w_z,
//	             u·u_z + v·v_z + (4/3) w·w_z + (a²)_z /((γ−1) Pr) ]
//
// and its z-difference is added to the right-hand side.

// Pr is the Prandtl number used throughout (air).
const Pr = 0.72

// viscousLineAccum adds the thin-layer viscous contribution along one
// L line of n points to r[1..n-2]:
//
//	r_i += (dt/h) · (S_{i+1/2} − S_{i−1/2})
//
// with midpoint derivatives (q_{i+1} − q_i)/h. The stencil vanishes
// exactly on constant states, preserving the freestream fixed point.
// g carries stretched-direction metrics; nil means uniform spacing h.
func viscousLineAccum(q []linalg.Vec5, r []linalg.Vec5, n int, h, dt, re float64, g *axisGeom) {
	if n < 3 {
		return
	}
	invRe := 1 / re
	coeff := dt / h * invRe
	// Midpoint flux between i and i+1.
	var prev linalg.Vec5
	havePrev := false
	var flux linalg.Vec5
	mid := func(i int) linalg.Vec5 {
		p0 := euler.PrimFromCons(q[i])
		p1 := euler.PrimFromCons(q[i+1])
		var du, dv, dw float64
		if g != nil {
			invd := g.invdm[i]
			du = (p1.U - p0.U) * invd
			dv = (p1.V - p0.V) * invd
			dw = (p1.W - p0.W) * invd
		} else {
			// Division (not reciprocal multiply) keeps the uniform path
			// bit-identical to the pre-stretch kernel.
			du = (p1.U - p0.U) / h
			dv = (p1.V - p0.V) / h
			dw = (p1.W - p0.W) / h
		}
		um := 0.5 * (p0.U + p1.U)
		vm := 0.5 * (p0.V + p1.V)
		wm := 0.5 * (p0.W + p1.W)
		a20 := euler.Gamma * p0.P / p0.Rho
		a21 := euler.Gamma * p1.P / p1.Rho
		da2 := (a21 - a20) / h
		if g != nil {
			da2 = (a21 - a20) * g.invdm[i]
		}
		var s linalg.Vec5
		s[1] = du
		s[2] = dv
		s[3] = (4.0 / 3.0) * dw
		s[4] = um*du + vm*dv + (4.0/3.0)*wm*dw + da2/((euler.Gamma-1)*Pr)
		return s
	}
	for i := 1; i <= n-2; i++ {
		if !havePrev {
			prev = mid(i - 1)
			havePrev = true
		}
		flux = mid(i)
		ci := coeff
		if g != nil {
			ci = dt * g.invh[i] * invRe
		}
		for c := 1; c < euler.NC; c++ {
			r[i][c] += ci * (flux[c] - prev[c])
		}
		prev = flux
	}
}

// viscousImplicitRow returns the increments (da, db, dc) the thin-layer
// viscous operator adds to one row of the L-direction implicit factor:
// the scalar diffusion (I − dt·ν ∇Δ/h²) with kinematic viscosity
// ν = 1/(ρ_i Re):
//
//	da = −f, db = +2f, dc = −f, f = dt/(Re·ρ_i·h²)
//
// Folding the viscous Jacobian's diffusive core into the diagonalized
// factor keeps the implicit step stable at boundary-layer cell sizes.
func viscousImplicitRow(dt, h, re, rho float64) (da, db, dc float64) {
	f := dt / (re * rho * h * h)
	return -f, 2 * f, -f
}
