package f3d

import (
	"fmt"
	"math"
)

// History records the residual trajectory of a run — the paper's
// convergence evidence ("without introducing any changes to ... the
// convergence properties of the codes").
type History struct {
	Residuals []float64
	// Flops is the cumulative estimated floating-point work of the run.
	Flops float64
	// Converged reports whether the relative-tolerance target was met.
	Converged bool
}

// Steps returns the number of time steps recorded.
func (h *History) Steps() int { return len(h.Residuals) }

// ReductionOrders returns how many orders of magnitude the residual
// fell from the first step to the last (0 for histories shorter than
// two steps or with a zero first residual).
func (h *History) ReductionOrders() float64 {
	if len(h.Residuals) < 2 || h.Residuals[0] <= 0 {
		return 0
	}
	last := h.Residuals[len(h.Residuals)-1]
	if last <= 0 {
		return math.Inf(1)
	}
	return math.Log10(h.Residuals[0] / last)
}

// MaxDiff returns the largest absolute difference between two residual
// histories of equal length, for convergence-invariance checks.
func (h *History) MaxDiff(o *History) float64 {
	if len(h.Residuals) != len(o.Residuals) {
		panic(fmt.Sprintf("f3d: History.MaxDiff lengths %d vs %d", len(h.Residuals), len(o.Residuals)))
	}
	worst := 0.0
	for i := range h.Residuals {
		if d := math.Abs(h.Residuals[i] - o.Residuals[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// RunToSteady advances the solver until the residual falls below
// relTol times the first step's residual, or maxSteps is reached,
// returning the residual history. A zero first residual (already
// steady, e.g. uniform flow) converges immediately.
func RunToSteady(s Solver, relTol float64, maxSteps int) History {
	if relTol <= 0 || relTol >= 1 {
		panic(fmt.Sprintf("f3d: RunToSteady relTol must be in (0,1), got %g", relTol))
	}
	if maxSteps < 1 {
		panic(fmt.Sprintf("f3d: RunToSteady maxSteps must be >= 1, got %d", maxSteps))
	}
	var h History
	target := math.Inf(1)
	for i := 0; i < maxSteps; i++ {
		st := s.Step()
		h.Residuals = append(h.Residuals, st.Residual)
		h.Flops += st.Flops
		if i == 0 {
			if st.Residual == 0 {
				h.Converged = true
				return h
			}
			target = st.Residual * relTol
			continue
		}
		if st.Residual <= target {
			h.Converged = true
			return h
		}
	}
	return h
}
