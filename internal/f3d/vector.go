package f3d

import (
	"fmt"
	"math"

	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/linalg"
)

// VectorSolver is the "vectorizable original" variant: component-major
// storage (one array per conserved variable, the Fortran common-block
// layout), full-field flux and spectral-radius staging arrays (data
// streams through memory rather than being recomputed in cache), and
// implicit sweeps that process one whole plane of independent systems
// at a time with plane-sized scratch arrays — the organization the
// paper's §4 identifies as the obstacle to cache performance ("the size
// of the scratch arrays were proportional to the size of a plane of
// data").
//
// It executes arithmetic identical to CacheSolver (shared kernels, and
// a planar tridiagonal solver that matches the scalar one bitwise), so
// the two variants' solutions agree exactly; only memory behaviour and
// loop structure differ. It is serial — the original code predates the
// parallelization effort.
type VectorSolver struct {
	cfg   Config
	zones []*ZoneState

	// Full-field staging arrays (per largest zone, reused across zones):
	// three flux fields and three spectral-radius fields.
	flux  [3][]linalg.Vec5
	sigma [3][]float64

	// Plane-sized sweep scratch.
	eig []euler.Eigen       // eigensystems for one plane of systems
	w   [euler.NC][]float64 // characteristic RHS planes
	ta  [euler.NC][]float64 // tridiagonal bands, per component
	tb  [euler.NC][]float64
	tc  [euler.NC][]float64

	// ifbufs holds the zonal-interface exchange buffers (nil when the
	// case has no interfaces).
	ifbufs []ifaceBuffer

	steps int
}

// NewVectorSolver builds the vector-style solver for cfg.
func NewVectorSolver(cfg Config) (*VectorSolver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ImplicitDissip4 {
		// The plane-at-a-time organization vectorizes tridiagonal
		// recurrences across systems; the pentadiagonal implicit
		// dissipation exists only in the cache-tuned variant — an
		// instance of the vector code shape constraining the numerics.
		return nil, fmt.Errorf("f3d: VectorSolver does not support ImplicitDissip4")
	}
	s := &VectorSolver{cfg: cfg}
	maxPts, maxPlane := 0, 0
	for i := range cfg.Case.Zones {
		z := &cfg.Case.Zones[i]
		s.zones = append(s.zones, newZoneState(z, grid.ComponentMajor))
		if p := z.Points(); p > maxPts {
			maxPts = p
		}
		for _, pl := range []int{z.JMax * z.KMax, z.KMax * z.LMax, z.JMax * z.LMax} {
			if pl > maxPlane {
				maxPlane = pl
			}
		}
	}
	for d := 0; d < 3; d++ {
		s.flux[d] = make([]linalg.Vec5, maxPts)
		s.sigma[d] = make([]float64, maxPts)
	}
	s.eig = make([]euler.Eigen, maxPlane)
	for c := 0; c < euler.NC; c++ {
		s.w[c] = make([]float64, maxPlane)
		s.ta[c] = make([]float64, maxPlane)
		s.tb[c] = make([]float64, maxPlane)
		s.tc[c] = make([]float64, maxPlane)
	}
	if len(cfg.Interfaces) > 0 {
		s.ifbufs = newIfaceBuffers(cfg.Case, cfg.Interfaces)
	}
	return s, nil
}

// Zones implements Solver.
func (s *VectorSolver) Zones() []*ZoneState { return s.zones }

// Config implements Solver.
func (s *VectorSolver) Config() *Config { return &s.cfg }

// Steps returns the number of time steps taken.
func (s *VectorSolver) Steps() int { return s.steps }

// Step implements Solver.
func (s *VectorSolver) Step() StepStats {
	var stats StepStats
	sumsq, n := 0.0, 0
	interior := 0
	if s.ifbufs != nil {
		captureInterfaces(s.zones, s.cfg.Interfaces, s.ifbufs)
	}
	for zi := range s.zones {
		zs := s.zones[zi]
		zss, zn, maxd := s.stepZone(zi)
		sumsq += zss
		n += zn
		if maxd > stats.MaxDelta {
			stats.MaxDelta = maxd
		}
		z := zs.Zone
		interior += (z.JMax - 2) * (z.KMax - 2) * (z.LMax - 2)
	}
	if n > 0 {
		stats.Residual = math.Sqrt(sumsq / float64(n))
	}
	stats.Flops = float64(interior) * FlopsPerPoint()
	s.steps++
	return stats
}

func (s *VectorSolver) stepZone(zi int) (sumsq float64, n int, maxDelta float64) {
	zs := s.zones[zi]
	zs.applyBC(&s.cfg)
	if s.ifbufs != nil {
		applyInterfacesTo(zi, s.zones, s.cfg.Interfaces, s.ifbufs)
	}
	s.stageFluxes(zs)
	s.rhsFromStaged(zs)
	sumsq, n = zs.residualSumSq()
	s.sweepPlanar(zs, euler.X, false)
	s.sweepPlanar(zs, euler.Y, false)
	maxDelta = s.sweepPlanar(zs, euler.Z, true)
	return sumsq, n, maxDelta
}

// stageFluxes fills the full-field flux and spectral-radius arrays for
// all three directions in one streaming pass over the zone — the
// vector code's "compute everything, then difference" organization.
func (s *VectorSolver) stageFluxes(zs *ZoneState) {
	z := zs.Zone
	var q linalg.Vec5
	for l := 0; l < z.LMax; l++ {
		for k := 0; k < z.KMax; k++ {
			for j := 0; j < z.JMax; j++ {
				p := z.Index(j, k, l)
				zs.Q.Point(j, k, l, q[:])
				for d := 0; d < 3; d++ {
					ax := euler.Axis(d)
					s.flux[d][p] = euler.Flux(ax, q)
					s.sigma[d][p] = euler.SpectralRadius(ax, q)
				}
			}
		}
	}
}

// rhsFromStaged builds the right-hand side from the staged arrays by
// gathering lines and reusing the shared accumulation kernel, in the
// same J→K→L order as the cache variant so every point's value is
// built by the identical float sequence.
func (s *VectorSolver) rhsFromStaged(zs *ZoneState) {
	z, cfg := zs.Zone, &s.cfg
	// Line buffers (borrow the plane scratch; a line always fits).
	qbuf := make([]linalg.Vec5, z.MaxDim())
	fbuf := make([]linalg.Vec5, z.MaxDim())
	sbuf := make([]float64, z.MaxDim())
	rbuf := make([]linalg.Vec5, z.MaxDim())

	gather := func(d int, ax euler.Axis, a, b, n int) {
		for i := 0; i < n; i++ {
			j, k, l := lineIndex(ax, i, a, b)
			p := z.Index(j, k, l)
			fbuf[i] = s.flux[d][p]
			sbuf[i] = s.sigma[d][p]
		}
	}

	// J pass (initializes R).
	nJ := z.JMax
	for l := 1; l <= z.LMax-2; l++ {
		for k := 1; k <= z.KMax-2; k++ {
			loadLine(&zs.Q, euler.X, k, l, qbuf, nJ)
			gather(0, euler.X, k, l, nJ)
			zeroLine(rbuf, nJ)
			rhsLineAccum(qbuf, fbuf, sbuf, rbuf, nJ, z.DJ, cfg.Dt, cfg.Eps4, cfg.Eps2B, zs.geom[euler.X])
			storeLineInterior(&zs.R, euler.X, k, l, rbuf, nJ)
		}
	}
	// K pass.
	nK := z.KMax
	for l := 1; l <= z.LMax-2; l++ {
		for j := 1; j <= z.JMax-2; j++ {
			loadLine(&zs.Q, euler.Y, j, l, qbuf, nK)
			gather(1, euler.Y, j, l, nK)
			loadLine(&zs.R, euler.Y, j, l, rbuf, nK)
			rhsLineAccum(qbuf, fbuf, sbuf, rbuf, nK, z.DK, cfg.Dt, cfg.Eps4, cfg.Eps2B, zs.geom[euler.Y])
			storeLineInterior(&zs.R, euler.Y, j, l, rbuf, nK)
		}
	}
	// L pass.
	nL := z.LMax
	for k := 1; k <= z.KMax-2; k++ {
		for j := 1; j <= z.JMax-2; j++ {
			loadLine(&zs.Q, euler.Z, j, k, qbuf, nL)
			gather(2, euler.Z, j, k, nL)
			loadLine(&zs.R, euler.Z, j, k, rbuf, nL)
			rhsLineAccum(qbuf, fbuf, sbuf, rbuf, nL, z.DL, cfg.Dt, cfg.Eps4, cfg.Eps2B, zs.geom[euler.Z])
			if cfg.Viscous {
				viscousLineAccum(qbuf, rbuf, nL, z.DL, cfg.Dt, cfg.Re, zs.geom[euler.Z])
			}
			storeLineInterior(&zs.R, euler.Z, j, k, rbuf, nL)
		}
	}
}

// sweepPlanar applies one direction's implicit factor, processing one
// whole plane of independent systems at a time: eigensystems for the
// full plane go into plane-sized scratch, the five characteristic
// systems are solved with the vectorizable planar Thomas algorithm
// (inner loops across systems), and the updates are transformed back.
// When update is true (the final factor) the conserved variables are
// advanced in the same pass and the largest |Δ| is returned.
func (s *VectorSolver) sweepPlanar(zs *ZoneState, ax euler.Axis, update bool) float64 {
	z, cfg := zs.Zone, &s.cfg
	n := lineLen(z, ax) // points along the sweep, incl. boundaries
	ni := n - 2         // interior unknowns
	outer, inner := crossDims(z, ax)
	nsys := inner - 2 // systems per plane
	if ni < 1 || nsys < 1 {
		return 0
	}
	h := spacing(z, ax)
	nu := cfg.Dt / (2 * h)
	muScale := cfg.EpsI * cfg.Dt / h
	maxDelta := 0.0
	var q, r, wv linalg.Vec5

	for o := 1; o <= outer-2; o++ {
		// Plane eigensystems and characteristic RHS. The plane is
		// indexed [i][sys] with i along the sweep (interior 1..ni) and
		// sys across (interior cross index = sys+1).
		for i := 1; i <= ni; i++ {
			row := (i - 1) * nsys
			for sy := 0; sy < nsys; sy++ {
				a, b := crossIndex(ax, o, sy+1)
				j, k, l := lineIndex(ax, i, a, b)
				zs.Q.Point(j, k, l, q[:])
				s.eig[row+sy] = euler.Eigensystem(ax, q)
				zs.R.Point(j, k, l, r[:])
				wv = linalg.MulVec5(&s.eig[row+sy].Tinv, &r)
				for c := 0; c < euler.NC; c++ {
					s.w[c][row+sy] = wv[c]
				}
			}
		}
		// Tridiagonal bands per characteristic field, vector order:
		// outer over rows, inner (unit stride) over systems.
		viscous := cfg.viscRe() > 0 && ax == euler.Z
		g := zs.geom[ax]
		for c := 0; c < euler.NC; c++ {
			for i := 1; i <= ni; i++ {
				row := (i - 1) * nsys
				for sy := 0; sy < nsys; sy++ {
					sig := sigmaFromLambda(&s.eig[row+sy].Lambda)
					nui, mu := nu, muScale*sig
					if g != nil {
						nui = cfg.Dt * g.inv2h[i]
						mu = cfg.EpsI * cfg.Dt * g.invh[i] * sig
					}
					lamPrev, lamNext := 0.0, 0.0
					if i > 1 {
						lamPrev = s.eig[row-nsys+sy].Lambda[c]
					}
					if i < ni {
						lamNext = s.eig[row+nsys+sy].Lambda[c]
					}
					av, bv, cv := implicitRow(nui, mu, lamPrev, lamNext)
					if viscous {
						a, b := crossIndex(ax, o, sy+1)
						j, k, l := lineIndex(ax, i, a, b)
						rho := zs.Q.At(0, j, k, l)
						var da, db, dc float64
						if g != nil {
							da, db, dc = viscousImplicitRowVar(cfg.Dt, cfg.Re, rho, g.invdm[i-1], g.invdm[i], g.invh[i])
						} else {
							da, db, dc = viscousImplicitRow(cfg.Dt, h, cfg.Re, rho)
						}
						av += da
						bv += db
						cv += dc
					}
					s.ta[c][row+sy], s.tb[c][row+sy], s.tc[c][row+sy] = av, bv, cv
				}
			}
			linalg.SolveTridiagPlanar(s.ta[c][:ni*nsys], s.tb[c][:ni*nsys], s.tc[c][:ni*nsys],
				s.w[c][:ni*nsys], ni, nsys)
		}
		// Back-transform (and final update).
		for i := 1; i <= ni; i++ {
			row := (i - 1) * nsys
			for sy := 0; sy < nsys; sy++ {
				a, b := crossIndex(ax, o, sy+1)
				j, k, l := lineIndex(ax, i, a, b)
				for c := 0; c < euler.NC; c++ {
					wv[c] = s.w[c][row+sy]
				}
				r = linalg.MulVec5(&s.eig[row+sy].T, &wv)
				if update {
					zs.Q.Point(j, k, l, q[:])
					for c := 0; c < euler.NC; c++ {
						d := r[c]
						q[c] += d
						if d < 0 {
							d = -d
						}
						if d > maxDelta {
							maxDelta = d
						}
					}
					zs.Q.SetPoint(j, k, l, q[:])
				} else {
					zs.R.SetPoint(j, k, l, r[:])
				}
			}
		}
	}
	return maxDelta
}
