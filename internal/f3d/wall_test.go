package f3d

import (
	"math"
	"testing"

	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/parloop"
)

// wallConfig builds a channel-like configuration: slip walls at the L
// faces, freestream elsewhere, with the freestream aligned so the wall
// is a true steady state (no velocity normal to the walls).
func wallConfig() Config {
	cfg := DefaultConfig(grid.Single(11, 9, 10))
	cfg.Freestream = euler.Prim{Rho: 1, U: 0.5, V: 0.05, W: 0, P: 1}
	cfg.Dt = EstimateDt(&cfg, 2.0)
	cfg.FaceBC = map[Face]BCKind{
		FaceLMin: BCSlipWall,
		FaceLMax: BCSlipWall,
	}
	return cfg
}

func TestSlipWallPreservesTangentialFreestream(t *testing.T) {
	// Freestream with zero wall-normal velocity is an exact fixed point
	// of the slip-wall treatment: the boundary routine reproduces the
	// interior state bitwise (removing a zero normal momentum changes
	// nothing).
	cfg := wallConfig()
	s := newCache(t, cfg, CacheOptions{})
	InitUniform(s)
	for i := 0; i < 5; i++ {
		st := s.Step()
		if st.Residual != 0 || st.MaxDelta != 0 {
			t.Fatalf("step %d: tangential freestream drifted at slip wall (res %g)", i, st.Residual)
		}
	}
}

func TestSlipWallZeroesNormalVelocity(t *testing.T) {
	// With wall-normal freestream velocity, the wall must hold W = 0
	// while preserving the donor's pressure.
	cfg := wallConfig()
	cfg.Freestream.W = 0.2
	cfg.Dt = EstimateDt(&cfg, 2.0)
	s := newCache(t, cfg, CacheOptions{})
	InitUniform(s)
	s.Step()
	zs := s.Zones()[0]
	z := zs.Zone
	var buf [euler.NC]float64
	for k := 1; k < z.KMax-1; k++ {
		for j := 1; j < z.JMax-1; j++ {
			zs.Q.Point(j, k, 0, buf[:])
			if buf[3] != 0 {
				t.Fatalf("wall point (%d,%d,0) has normal momentum %g", j, k, buf[3])
			}
			p := euler.PrimFromCons(buf)
			if p.P <= 0 {
				t.Fatalf("wall point (%d,%d,0) has non-physical pressure %g", j, k, p.P)
			}
		}
	}
}

func TestNoSlipWallZeroesAllVelocity(t *testing.T) {
	cfg := wallConfig()
	cfg.FaceBC[FaceLMin] = BCNoSlipWall
	cfg.Viscous, cfg.Re = true, 200
	s := newCache(t, cfg, CacheOptions{})
	InitUniform(s)
	s.Step()
	zs := s.Zones()[0]
	z := zs.Zone
	var buf [euler.NC]float64
	for k := 1; k < z.KMax-1; k++ {
		for j := 1; j < z.JMax-1; j++ {
			zs.Q.Point(j, k, 0, buf[:])
			if buf[1] != 0 || buf[2] != 0 || buf[3] != 0 {
				t.Fatalf("no-slip wall point (%d,%d,0) has momentum (%g,%g,%g)", j, k, buf[1], buf[2], buf[3])
			}
			p := euler.PrimFromCons(buf)
			if p.P <= 0 || p.Rho <= 0 {
				t.Fatalf("no-slip wall point non-physical: %+v", p)
			}
		}
	}
}

func TestBoundaryLayerDevelops(t *testing.T) {
	// Flat plate: no-slip wall at L-min with viscosity and a stretched L
	// grid clustered at the wall. After some steps a momentum deficit —
	// a boundary layer — exists near the wall: u rises monotonically-ish
	// from 0 at the wall toward the freestream.
	z := grid.StretchedZone("plate", 11, 9, 17, 0, 0, 1.8)
	cfg := DefaultConfig(grid.Case{Name: "plate", Zones: []grid.Zone{z}})
	cfg.Freestream = euler.Prim{Rho: 1, U: 0.5, V: 0, W: 0, P: 1}
	cfg.Dt = EstimateDt(&cfg, 1.5)
	cfg.Viscous, cfg.Re = true, 300
	cfg.FaceBC = map[Face]BCKind{
		FaceLMin: BCNoSlipWall,
		FaceLMax: BCFreestream,
	}
	s := newCache(t, cfg, CacheOptions{})
	InitUniform(s)
	for i := 0; i < 120; i++ {
		st := s.Step()
		if math.IsNaN(st.Residual) {
			t.Fatalf("boundary-layer run blew up at step %d", i)
		}
	}
	zs := s.Zones()[0]
	j, k := z.JMax/2, z.KMax/2
	var buf [euler.NC]float64
	u := make([]float64, z.LMax)
	for l := 0; l < z.LMax; l++ {
		zs.Q.Point(j, k, l, buf[:])
		u[l] = buf[1] / buf[0]
	}
	if u[0] != 0 {
		t.Fatalf("wall velocity %g, want 0", u[0])
	}
	// Deficit near the wall, recovery toward freestream aloft.
	if u[1] >= 0.9*cfg.Freestream.U {
		t.Errorf("no momentum deficit near wall: u[1] = %g", u[1])
	}
	if u[z.LMax-2] < 0.8*cfg.Freestream.U {
		t.Errorf("no recovery toward freestream: u[top-1] = %g", u[z.LMax-2])
	}
	if !(u[1] < u[z.LMax/2]) {
		t.Errorf("profile not increasing away from wall: u[1]=%g, u[mid]=%g", u[1], u[z.LMax/2])
	}
}

func TestWallBCVariantsAgreeBitwise(t *testing.T) {
	cfg := wallConfig()
	cfg.FaceBC[FaceLMin] = BCNoSlipWall
	cfg.Viscous, cfg.Re = true, 300
	cs := newCache(t, cfg, CacheOptions{})
	vs := newVector(t, cfg)
	team := parloop.NewTeam(3)
	defer team.Close()
	ps := newCache(t, cfg, CacheOptions{Team: team, Phases: ParallelPhases{RHS: true, SweepJK: true, SweepL: true, BC: true}})
	InitUniform(cs)
	InitUniform(vs)
	InitUniform(ps)
	for i := 0; i < 5; i++ {
		a := cs.Step()
		b := vs.Step()
		c := ps.Step()
		if a.Residual != b.Residual || a.Residual != c.Residual {
			t.Fatalf("step %d: wall-BC residuals diverge", i)
		}
	}
	if d := MaxPointwiseDiff(cs, vs); d != 0 {
		t.Fatalf("wall-BC vector/cache differ by %g", d)
	}
	if d := MaxPointwiseDiff(cs, ps); d != 0 {
		t.Fatalf("wall-BC serial/parallel(BC) differ by %g", d)
	}
}

func TestFaceBCValidation(t *testing.T) {
	cfg := wallConfig()
	cfg.FaceBC[Face(17)] = BCFreestream
	if err := cfg.Validate(); err == nil {
		t.Error("unknown face accepted")
	}
	cfg = wallConfig()
	cfg.FaceBC[FaceJMin] = BCKind(42)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown face BC kind accepted")
	}
	if FaceLMin.String() != "l-min" || Face(9).String() != "Face(9)" {
		t.Error("Face.String wrong")
	}
	if BCSlipWall.String() != "slip-wall" || BCNoSlipWall.String() != "no-slip-wall" {
		t.Error("wall BCKind strings wrong")
	}
}
