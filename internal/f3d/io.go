package f3d

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/euler"
)

// Solution checkpointing. Production CFD runs save and restart —
// the paper's 59-million-point case at 2.3 steps/hour could not have
// been run any other way. The format is a small self-describing binary:
// header, per-zone dimensions, conserved fields in point-major order,
// and a CRC so a torn write is detected rather than silently restarted
// from garbage.

const (
	checkpointMagic   = 0x46334443 // "F3DC"
	checkpointVersion = 1
)

// SaveCheckpoint writes the solver's solution (all zones' conserved
// fields plus the step count) to w.
func SaveCheckpoint(w io.Writer, s Solver, steps int) error {
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)

	writeU64 := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := out.Write(buf[:])
		return err
	}
	if err := writeU64(checkpointMagic); err != nil {
		return fmt.Errorf("f3d: checkpoint header: %w", err)
	}
	if err := writeU64(checkpointVersion); err != nil {
		return err
	}
	if err := writeU64(uint64(steps)); err != nil {
		return err
	}
	zones := s.Zones()
	if err := writeU64(uint64(len(zones))); err != nil {
		return err
	}
	var buf [euler.NC]float64
	for _, zs := range zones {
		z := zs.Zone
		for _, d := range []int{z.JMax, z.KMax, z.LMax} {
			if err := writeU64(uint64(d)); err != nil {
				return err
			}
		}
		for l := 0; l < z.LMax; l++ {
			for k := 0; k < z.KMax; k++ {
				for j := 0; j < z.JMax; j++ {
					zs.Q.Point(j, k, l, buf[:])
					for c := 0; c < euler.NC; c++ {
						if err := writeU64(math.Float64bits(buf[c])); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	// Trailing CRC (of everything before it), written directly.
	sum := crc.Sum32()
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("f3d: checkpoint crc: %w", err)
	}
	return nil
}

// LoadCheckpoint restores a checkpoint written by SaveCheckpoint into
// the solver, which must have been built for the same case (zone count
// and dimensions are verified). It returns the step count recorded at
// save time.
func LoadCheckpoint(r io.Reader, s Solver) (steps int, err error) {
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	in := io.TeeReader(br, crc)

	readU64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(in, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := readU64()
	if err != nil {
		return 0, fmt.Errorf("f3d: checkpoint header: %w", err)
	}
	if magic != checkpointMagic {
		return 0, fmt.Errorf("f3d: not a checkpoint (magic %#x)", magic)
	}
	version, err := readU64()
	if err != nil {
		return 0, err
	}
	if version != checkpointVersion {
		return 0, fmt.Errorf("f3d: unsupported checkpoint version %d", version)
	}
	stepsU, err := readU64()
	if err != nil {
		return 0, err
	}
	nz, err := readU64()
	if err != nil {
		return 0, err
	}
	zones := s.Zones()
	if int(nz) != len(zones) {
		return 0, fmt.Errorf("f3d: checkpoint has %d zones, solver has %d", nz, len(zones))
	}
	var buf [euler.NC]float64
	for _, zs := range zones {
		z := zs.Zone
		for _, want := range []int{z.JMax, z.KMax, z.LMax} {
			d, err := readU64()
			if err != nil {
				return 0, err
			}
			if int(d) != want {
				return 0, fmt.Errorf("f3d: checkpoint zone dims mismatch (%d vs %d)", d, want)
			}
		}
		for l := 0; l < z.LMax; l++ {
			for k := 0; k < z.KMax; k++ {
				for j := 0; j < z.JMax; j++ {
					for c := 0; c < euler.NC; c++ {
						bits, err := readU64()
						if err != nil {
							return 0, fmt.Errorf("f3d: checkpoint truncated: %w", err)
						}
						buf[c] = math.Float64frombits(bits)
					}
					zs.Q.SetPoint(j, k, l, buf[:])
				}
			}
		}
	}
	wantSum := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return 0, fmt.Errorf("f3d: checkpoint crc missing: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != wantSum {
		return 0, fmt.Errorf("f3d: checkpoint corrupt (crc %#x, want %#x)", got, wantSum)
	}
	return int(stepsU), nil
}
