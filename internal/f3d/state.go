package f3d

import (
	"fmt"
	"math"

	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/linalg"
)

// ZoneState is the per-zone solution storage of a solver: the conserved
// variables Q and the working right-hand side / update field R.
type ZoneState struct {
	Zone *grid.Zone
	Q    grid.StateField
	R    grid.StateField
	// geom holds per-axis metric arrays for stretched directions (nil
	// entries for uniform directions).
	geom zoneGeom
}

// newZoneState allocates solution storage for z in the given layout.
func newZoneState(z *grid.Zone, layout grid.Layout) *ZoneState {
	return &ZoneState{
		Zone: z,
		Q:    grid.NewStateField(z, euler.NC, layout),
		R:    grid.NewStateField(z, euler.NC, layout),
		geom: newZoneGeom(z),
	}
}

// initUniform fills the zone with the freestream state.
func (zs *ZoneState) initUniform(fs euler.Prim) {
	u := fs.Cons()
	z := zs.Zone
	for l := 0; l < z.LMax; l++ {
		for k := 0; k < z.KMax; k++ {
			for j := 0; j < z.JMax; j++ {
				zs.Q.SetPoint(j, k, l, u[:])
			}
		}
	}
}

// addPulse superimposes a smooth density/pressure perturbation of
// relative amplitude amp centered in the zone, used by tests and the
// convergence experiments as a disturbance for the solver to damp out.
// Velocity is left at freestream so the initial state stays physical
// for any |amp| < 1.
func (zs *ZoneState) addPulse(fs euler.Prim, amp float64) {
	z := zs.Zone
	cj, ck, cl := float64(z.JMax-1)/2, float64(z.KMax-1)/2, float64(z.LMax-1)/2
	// Gaussian with width a fifth of the smallest dimension.
	w := float64(z.JMax - 1)
	if float64(z.KMax-1) < w {
		w = float64(z.KMax - 1)
	}
	if float64(z.LMax-1) < w {
		w = float64(z.LMax - 1)
	}
	w /= 5
	if w < 1 {
		w = 1
	}
	for l := 1; l < z.LMax-1; l++ {
		for k := 1; k < z.KMax-1; k++ {
			for j := 1; j < z.JMax-1; j++ {
				dj, dk, dl := float64(j)-cj, float64(k)-ck, float64(l)-cl
				r2 := (dj*dj + dk*dk + dl*dl) / (w * w)
				g := amp * math.Exp(-r2)
				p := euler.Prim{
					Rho: fs.Rho * (1 + g),
					U:   fs.U, V: fs.V, W: fs.W,
					P: fs.P * (1 + g),
				}
				u := p.Cons()
				zs.Q.SetPoint(j, k, l, u[:])
			}
		}
	}
}

// faceOf returns the face a boundary point belongs to; when the point
// lies on several faces (edges and corners), the face latest in Face
// order wins, making the per-point treatment deterministic and
// identical for every code path. Interior points return -1.
func faceOf(z *grid.Zone, j, k, l int) Face {
	f := Face(-1)
	if j == 0 {
		f = FaceJMin
	}
	if j == z.JMax-1 {
		f = FaceJMax
	}
	if k == 0 {
		f = FaceKMin
	}
	if k == z.KMax-1 {
		f = FaceKMax
	}
	if l == 0 {
		f = FaceLMin
	}
	if l == z.LMax-1 {
		f = FaceLMax
	}
	return f
}

// bcKind resolves the effective boundary treatment of a face.
func (cfg *Config) bcKind(f Face) BCKind {
	if b, ok := cfg.FaceBC[f]; ok {
		return b
	}
	return cfg.BC
}

// applyBCPoint computes and stores the boundary value at one face
// point. It is the single source of truth for boundary values: the
// serial routine, the parallel worker and every solver variant call it,
// so boundary treatment can never diverge between code paths.
func (zs *ZoneState) applyBCPoint(cfg *Config, j, k, l int) {
	z := zs.Zone
	f := faceOf(z, j, k, l)
	if f < 0 {
		return
	}
	switch cfg.bcKind(f) {
	case BCFreestream:
		u := cfg.Freestream.Cons()
		zs.Q.SetPoint(j, k, l, u[:])
	case BCExtrapolate:
		var buf [euler.NC]float64
		ji, ki, li := clampInterior(j, z.JMax), clampInterior(k, z.KMax), clampInterior(l, z.LMax)
		zs.Q.Point(ji, ki, li, buf[:])
		zs.Q.SetPoint(j, k, l, buf[:])
	case BCSlipWall:
		var buf [euler.NC]float64
		ji, ki, li := clampInterior(j, z.JMax), clampInterior(k, z.KMax), clampInterior(l, z.LMax)
		zs.Q.Point(ji, ki, li, buf[:])
		// Remove the face-normal momentum and its kinetic energy.
		n := 1 + int(f)/2 // momentum component index for the face normal
		mn := buf[n]
		buf[4] -= 0.5 * mn * mn / buf[0]
		buf[n] = 0
		zs.Q.SetPoint(j, k, l, buf[:])
	case BCNoSlipWall:
		var buf [euler.NC]float64
		ji, ki, li := clampInterior(j, z.JMax), clampInterior(k, z.KMax), clampInterior(l, z.LMax)
		zs.Q.Point(ji, ki, li, buf[:])
		buf[4] -= 0.5 * (buf[1]*buf[1] + buf[2]*buf[2] + buf[3]*buf[3]) / buf[0]
		buf[1], buf[2], buf[3] = 0, 0, 0
		zs.Q.SetPoint(j, k, l, buf[:])
	default:
		panic(fmt.Sprintf("f3d: bad BC kind %d", int(cfg.bcKind(f))))
	}
}

// applyBC refreshes all six boundary faces of the zone according to the
// config. The work per face is O(face points) — exactly the cheap
// boundary loops the paper declines to parallelize.
func (zs *ZoneState) applyBC(cfg *Config) {
	zs.forEachFacePoint(func(j, k, l int) {
		zs.applyBCPoint(cfg, j, k, l)
	})
}

// forEachFacePoint visits every boundary point of the zone exactly once.
func (zs *ZoneState) forEachFacePoint(fn func(j, k, l int)) {
	z := zs.Zone
	for l := 0; l < z.LMax; l++ {
		for k := 0; k < z.KMax; k++ {
			for j := 0; j < z.JMax; j++ {
				if j == 0 || j == z.JMax-1 || k == 0 || k == z.KMax-1 || l == 0 || l == z.LMax-1 {
					fn(j, k, l)
				}
			}
		}
	}
}

// facepoints returns the number of boundary points of the zone.
func (zs *ZoneState) facePoints() int {
	z := zs.Zone
	interior := (z.JMax - 2) * (z.KMax - 2) * (z.LMax - 2)
	return z.Points() - interior
}

// residualSumSq returns the sum of squares of the stored right-hand
// side over the interior points of the zone and the interior point
// count, computed in a fixed serial order so the value is identical for
// every solver variant and team size.
func (zs *ZoneState) residualSumSq() (sumsq float64, n int) {
	z := zs.Zone
	var buf [euler.NC]float64
	for l := 1; l < z.LMax-1; l++ {
		for k := 1; k < z.KMax-1; k++ {
			for j := 1; j < z.JMax-1; j++ {
				zs.R.Point(j, k, l, buf[:])
				for c := 0; c < euler.NC; c++ {
					sumsq += buf[c] * buf[c]
				}
				n++
			}
		}
	}
	return sumsq, n
}

// residualFromR returns the RMS of the stored right-hand side over the
// interior points of the zone.
func (zs *ZoneState) residualFromR() float64 {
	sumsq, n := zs.residualSumSq()
	if n == 0 {
		return 0
	}
	return math.Sqrt(sumsq / float64(n))
}

// totalConserved returns the sum of each conserved component over the
// whole zone (a discrete conservation check for tests).
func (zs *ZoneState) totalConserved() linalg.Vec5 {
	z := zs.Zone
	var buf [euler.NC]float64
	var tot linalg.Vec5
	for l := 0; l < z.LMax; l++ {
		for k := 0; k < z.KMax; k++ {
			for j := 0; j < z.JMax; j++ {
				zs.Q.Point(j, k, l, buf[:])
				for c := 0; c < euler.NC; c++ {
					tot[c] += buf[c]
				}
			}
		}
	}
	return tot
}

// StepStats reports what one time step did.
type StepStats struct {
	// Residual is the RMS over all interior points (all zones) of the
	// explicit right-hand side before the implicit sweeps — the quantity
	// whose decay measures convergence to steady state.
	Residual float64
	// MaxDelta is the largest absolute solution update applied.
	MaxDelta float64
	// Flops estimates the floating-point operations performed.
	Flops float64
}

// Solver is the interface both code variants implement.
type Solver interface {
	// Step advances the solution one time step and reports statistics.
	Step() StepStats
	// Zones exposes the per-zone solution state.
	Zones() []*ZoneState
	// Config returns the run configuration.
	Config() *Config
}

// MaxPointwiseDiff returns the largest absolute difference between the
// conserved fields of two solvers with identical cases, for
// variant-equivalence tests.
func MaxPointwiseDiff(a, b Solver) float64 {
	za, zb := a.Zones(), b.Zones()
	if len(za) != len(zb) {
		panic("f3d: MaxPointwiseDiff zone count mismatch")
	}
	maxd := 0.0
	var pa, pb [euler.NC]float64
	for i := range za {
		zza, zzb := za[i], zb[i]
		if zza.Zone.Points() != zzb.Zone.Points() {
			panic("f3d: MaxPointwiseDiff zone shape mismatch")
		}
		z := zza.Zone
		for l := 0; l < z.LMax; l++ {
			for k := 0; k < z.KMax; k++ {
				for j := 0; j < z.JMax; j++ {
					zza.Q.Point(j, k, l, pa[:])
					zzb.Q.Point(j, k, l, pb[:])
					for c := 0; c < euler.NC; c++ {
						if d := math.Abs(pa[c] - pb[c]); d > maxd {
							maxd = d
						}
					}
				}
			}
		}
	}
	return maxd
}

// InitUniform initializes every zone of the solver to freestream and
// applies boundary conditions.
func InitUniform(s Solver) {
	cfg := s.Config()
	for _, zs := range s.Zones() {
		zs.initUniform(cfg.Freestream)
		zs.applyBC(cfg)
	}
}

// InitPulse initializes to freestream plus a centered density/pressure
// pulse of relative amplitude amp in every zone.
func InitPulse(s Solver, amp float64) {
	cfg := s.Config()
	for _, zs := range s.Zones() {
		zs.initUniform(cfg.Freestream)
		zs.addPulse(cfg.Freestream, amp)
		zs.applyBC(cfg)
	}
}
