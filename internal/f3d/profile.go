package f3d

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/model"
)

// Per-phase flop accounting used to build performance-model profiles.
// The residual check and boundary conditions are the serial work whose
// Amdahl cost the paper discusses (§3: "the more time is spent in
// serial code, the harder it is to show benefit from using larger
// numbers of processors").
const (
	// flopsBCPerFacePoint is the boundary-condition work per face point.
	flopsBCPerFacePoint = 10
	// flopsResidualPerPoint is the serial residual-norm accumulation.
	flopsResidualPerPoint = 11
)

// StepProfileFor returns the per-time-step execution profile of the
// cache-tuned solver on the given case with the given phase
// parallelization, in units of floating-point operations (callers scale
// to cycles with model.StepProfile.Scale using a machine's cycles per
// delivered flop). The loop classes mirror the solver's actual parallel
// regions:
//
//   - rhs-jk:   J+K RHS passes, partitioned over L     (1 sync/zone)
//   - rhs-l:    L RHS pass, partitioned over K         (1 sync/zone)
//   - sweep-jk: J+K implicit sweeps, partitioned over L (1 sync/zone)
//   - sweep-l:  L sweep + update, partitioned over K   (1 sync/zone)
//   - bc:       boundary conditions (serial by default)
//   - residual: serial residual accumulation
func StepProfileFor(c grid.Case, phases ParallelPhases) model.StepProfile {
	var sp model.StepProfile
	for i := range c.Zones {
		z := &c.Zones[i]
		interior := float64((z.JMax - 2) * (z.KMax - 2) * (z.LMax - 2))
		face := float64(z.Points()) - interior
		parL := z.LMax - 2
		parK := z.KMax - 2

		rhsJK := interior * float64(flopsRHSPerPoint) * 2 / 3
		rhsL := interior * float64(flopsRHSPerPoint) * 1 / 3
		sweepJK := interior * float64(flopsSweepPerPoint) * 2
		sweepL := interior * (float64(flopsSweepPerPoint) + flopsUpdatePerPoint)
		bc := face * flopsBCPerFacePoint
		resid := interior * flopsResidualPerPoint

		add := func(name string, work float64, par int, on bool) {
			if on {
				sp.Loops = append(sp.Loops, model.LoopClass{
					Name:        fmt.Sprintf("%s/%s", z.Name, name),
					WorkCycles:  work,
					Parallelism: par,
					SyncEvents:  1,
				})
			} else {
				sp.SerialCycles += work
			}
		}
		add("rhs-jk", rhsJK, parL, phases.RHS)
		add("rhs-l", rhsL, parK, phases.RHS)
		add("sweep-jk", sweepJK, parL, phases.SweepJK)
		add("sweep-l", sweepL, parK, phases.SweepL)
		add("bc", bc, z.LMax, phases.BC)
		sp.SerialCycles += resid
	}
	return sp
}

// StepProfileF3D returns a profile shaped like the original F3D's
// partially flux-split scheme rather than like this package's
// diagonalized ADI: the two key implicit loops have data dependencies
// in two of three directions (§4), leaving only the J dimension as
// loop-level parallelism, so every major phase's available parallelism
// is the zone's J extent. This is the profile that reproduces the
// paper's observed plateau anchors (jumps near J/2 ≈ 44 for the
// 1-million-point case and ≈ 87 for the 59-million-point case).
//
// workPerPoint is the single-processor work per grid point per time
// step in the profile's work units (use cycles derived from the paper's
// measured single-processor rates when simulating Table 4), and
// serialFrac the fraction of it that stays serial (boundary conditions
// plus residual bookkeeping).
func StepProfileF3D(c grid.Case, workPerPoint, serialFrac float64) model.StepProfile {
	if workPerPoint <= 0 {
		panic(fmt.Sprintf("f3d: StepProfileF3D workPerPoint must be > 0, got %g", workPerPoint))
	}
	if serialFrac < 0 || serialFrac >= 1 {
		panic(fmt.Sprintf("f3d: StepProfileF3D serialFrac must be in [0,1), got %g", serialFrac))
	}
	var sp model.StepProfile
	for i := range c.Zones {
		z := &c.Zones[i]
		work := float64(z.Points()) * workPerPoint
		serial := work * serialFrac
		par := work - serial
		// F3D's per-zone step is a handful of large parallel loops; the
		// paper's Example 3 hoisting leaves roughly one synchronization
		// per major routine per zone. The two key implicit loops with
		// dependencies in two of three directions are J-limited; the
		// remaining explicit/RHS loops parallelize over K or L. The mix
		// is what produces the paper's gentle rise across the J-plateau
		// (the K- and L-limited loops keep stepping while the J-limited
		// loops are flat).
		regions := []struct {
			name string
			par  int
			frac float64
		}{
			{"implicit-a", z.JMax, 0.25},
			{"implicit-b", z.JMax, 0.25},
			{"explicit-k", z.KMax, 0.25},
			{"explicit-l", z.LMax, 0.25},
		}
		for _, r := range regions {
			sp.Loops = append(sp.Loops, model.LoopClass{
				Name:        fmt.Sprintf("%s/%s", z.Name, r.name),
				WorkCycles:  par * r.frac,
				Parallelism: r.par,
				SyncEvents:  1,
			})
		}
		sp.SerialCycles += serial
	}
	return sp
}
