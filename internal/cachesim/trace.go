package cachesim

import "fmt"

// Ordering identifies one of the Example 4 access orderings for the
// parallel traversal of a 3-D array A(JMAX,KMAX,LMAX) stored J-fastest.
type Ordering int

const (
	// OrderingIdeal is Example 4(a): C$doacross over L, loops L-K-J, so
	// each processor walks a contiguous slab in storage order.
	OrderingIdeal Ordering = iota
	// OrderingAcceptable is Example 4(b): C$doacross over K with loop
	// order K-L-J — unit-stride inner runs, but each processor's runs
	// are scattered across the whole array.
	OrderingAcceptable
	// OrderingUnacceptable is Example 4(c): C$doacross over J, batching
	// BUFFER(K) = A(J,K,L) — a STRIDE-N gather in which every processor
	// touches every page of the array, the pattern whose page contention
	// the paper could never cure on some systems.
	OrderingUnacceptable
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case OrderingIdeal:
		return "ideal (4a: doacross L, loops L-K-J)"
	case OrderingAcceptable:
		return "acceptable (4b: doacross K, loops K-L-J)"
	case OrderingUnacceptable:
		return "unacceptable (4c: doacross J, STRIDE-N gather)"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// TraceConfig sets up an Example 4 trace.
type TraceConfig struct {
	Procs int
	// Per-processor cache parameters.
	CacheBytes, LineBytes, Ways int
	// TLB parameters.
	TLBEntries int
	// NUMA layout.
	Nodes, ProcsPerNode, PageBytes int
	// Array dimensions (elements are 8-byte float64, J fastest).
	JMax, KMax, LMax int
}

// DefaultTraceConfig returns a small Origin-2000-flavored configuration
// suitable for tests and the contention demo.
func DefaultTraceConfig(procs int) TraceConfig {
	nodes := procs / 2
	if nodes < 1 {
		nodes = 1
	}
	return TraceConfig{
		Procs:      procs,
		CacheBytes: 32 << 10, LineBytes: 128, Ways: 2,
		TLBEntries: 48,
		Nodes:      nodes, ProcsPerNode: 2, PageBytes: 4 << 10,
		JMax: 64, KMax: 64, LMax: 64,
	}
}

// Report aggregates what the trace observed.
type Report struct {
	Ordering      Ordering
	Accesses      uint64
	CacheMisses   uint64
	TLBMisses     uint64
	CacheMissRate float64
	TLBMissRate   float64
	// Page-sharing statistics across processors (the §7 contention
	// signal: "data from the same page being shared by multiple
	// processors").
	PagesTouched       int
	AvgSharersPerPage  float64
	MaxSharers         int
	SharedPageFraction float64 // pages touched by ≥2 processors
	// RemoteAccessFraction is the fraction of accesses whose page is
	// homed on a different node than the accessing processor.
	RemoteAccessFraction float64
	// Cache-line sharing statistics: on a cache-coherent SMP, lines
	// touched by several processors cost coherence traffic even when the
	// processors use disjoint words (false sharing). The paper's tuned
	// code avoids this by giving each processor contiguous slabs.
	LinesTouched       int
	AvgSharersPerLine  float64
	SharedLineFraction float64
}

// Trace runs the Example 4 ordering through per-processor caches and
// TLBs and collects sharing statistics. The parallel loop is dealt in
// static blocks, as C$doacross does.
func Trace(cfg TraceConfig, ord Ordering) Report {
	if cfg.Procs < 1 {
		panic(fmt.Sprintf("cachesim: Trace needs >= 1 processor, got %d", cfg.Procs))
	}
	if cfg.JMax < 1 || cfg.KMax < 1 || cfg.LMax < 1 {
		panic(fmt.Sprintf("cachesim: Trace bad dims %d/%d/%d", cfg.JMax, cfg.KMax, cfg.LMax))
	}
	numa := NewNUMA(cfg.Nodes, cfg.ProcsPerNode, cfg.PageBytes)
	caches := make([]*Cache, cfg.Procs)
	tlbs := make([]*TLB, cfg.Procs)
	for p := range caches {
		caches[p] = NewCache(cfg.CacheBytes, cfg.LineBytes, cfg.Ways)
		tlbs[p] = NewTLB(cfg.TLBEntries, cfg.PageBytes)
	}
	pageSharers := make(map[uint64]map[int]bool)
	lineSharers := make(map[uint64]map[int]bool)
	var remote, total uint64

	addr := func(j, k, l int) uint64 {
		return uint64((l*cfg.KMax+k)*cfg.JMax+j) * 8
	}
	access := func(proc int, a uint64) {
		caches[proc].Access(a)
		tlbs[proc].Access(a)
		pg := numa.Page(a)
		s := pageSharers[pg]
		if s == nil {
			s = make(map[int]bool)
			pageSharers[pg] = s
		}
		s[proc] = true
		ln := a / uint64(cfg.LineBytes)
		ls := lineSharers[ln]
		if ls == nil {
			ls = make(map[int]bool)
			lineSharers[ln] = ls
		}
		ls[proc] = true
		total++
		if numa.HomeNode(a) != numa.NodeOf(proc) {
			remote++
		}
	}

	block := func(n, procs, p int) (lo, hi int) {
		q, r := n/procs, n%procs
		if p < r {
			lo = p * (q + 1)
			return lo, lo + q + 1
		}
		lo = r*(q+1) + (p-r)*q
		return lo, lo + q
	}

	for p := 0; p < cfg.Procs; p++ {
		switch ord {
		case OrderingIdeal:
			lo, hi := block(cfg.LMax, cfg.Procs, p)
			for l := lo; l < hi; l++ {
				for k := 0; k < cfg.KMax; k++ {
					for j := 0; j < cfg.JMax; j++ {
						access(p, addr(j, k, l))
					}
				}
			}
		case OrderingAcceptable:
			lo, hi := block(cfg.KMax, cfg.Procs, p)
			for k := lo; k < hi; k++ {
				for l := 0; l < cfg.LMax; l++ {
					for j := 0; j < cfg.JMax; j++ {
						access(p, addr(j, k, l))
					}
				}
			}
		case OrderingUnacceptable:
			lo, hi := block(cfg.JMax, cfg.Procs, p)
			for j := lo; j < hi; j++ {
				for l := 0; l < cfg.LMax; l++ {
					for k := 0; k < cfg.KMax; k++ {
						access(p, addr(j, k, l))
					}
				}
			}
		default:
			panic(fmt.Sprintf("cachesim: unknown ordering %v", ord))
		}
	}

	rep := Report{Ordering: ord, Accesses: total}
	for p := 0; p < cfg.Procs; p++ {
		rep.CacheMisses += caches[p].Misses()
		rep.TLBMisses += tlbs[p].Misses()
	}
	if total > 0 {
		rep.CacheMissRate = float64(rep.CacheMisses) / float64(total)
		rep.TLBMissRate = float64(rep.TLBMisses) / float64(total)
		rep.RemoteAccessFraction = float64(remote) / float64(total)
	}
	rep.PagesTouched = len(pageSharers)
	shared := 0
	sumSharers := 0
	for _, s := range pageSharers {
		if len(s) > rep.MaxSharers {
			rep.MaxSharers = len(s)
		}
		if len(s) >= 2 {
			shared++
		}
		sumSharers += len(s)
	}
	if rep.PagesTouched > 0 {
		rep.AvgSharersPerPage = float64(sumSharers) / float64(rep.PagesTouched)
		rep.SharedPageFraction = float64(shared) / float64(rep.PagesTouched)
	}
	rep.LinesTouched = len(lineSharers)
	sharedLines, sumLineSharers := 0, 0
	for _, s := range lineSharers {
		if len(s) >= 2 {
			sharedLines++
		}
		sumLineSharers += len(s)
	}
	if rep.LinesTouched > 0 {
		rep.AvgSharersPerLine = float64(sumLineSharers) / float64(rep.LinesTouched)
		rep.SharedLineFraction = float64(sharedLines) / float64(rep.LinesTouched)
	}
	return rep
}
