package cachesim

import "testing"

func TestArenaCarving(t *testing.T) {
	a := NewArena(10)
	x := a.F64(4)
	y := a.F64(6)
	if len(x) != 4 || len(y) != 6 {
		t.Fatalf("lengths %d, %d", len(x), len(y))
	}
	if a.InUse() != 10 || a.Cap() != 10 {
		t.Fatalf("in use %d, cap %d", a.InUse(), a.Cap())
	}
	// Slices are zeroed, disjoint and capacity-clamped.
	for i := range x {
		x[i] = 1
	}
	for _, v := range y {
		if v != 0 {
			t.Fatal("neighbor scratch written through")
		}
	}
	if cap(x) != 4 || cap(y) != 6 {
		t.Fatalf("caps %d, %d: three-index carve must clamp", cap(x), cap(y))
	}
}

func TestArenaZeroSizedAndReset(t *testing.T) {
	a := NewArena(3)
	if s := a.F64(0); len(s) != 0 {
		t.Fatal("zero-size carve")
	}
	a.F64(3)
	a.Reset()
	if a.InUse() != 0 {
		t.Fatal("reset did not empty")
	}
	if s := a.F64(3); len(s) != 3 {
		t.Fatal("carve after reset")
	}
}

func TestArenaPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative arena": func() { NewArena(-1) },
		"negative carve": func() { NewArena(2).F64(-1) },
		"exhausted": func() {
			a := NewArena(2)
			a.F64(2)
			a.F64(1)
		},
		"pencil negative": func() { PencilFloats(-1, 5) },
		"pencil no lanes": func() { PencilFloats(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPencilFloatsSizing(t *testing.T) {
	// Six band families, five lanes: 30 floats per point of the line.
	if got := PencilFloats(100, 5); got != 30*100 {
		t.Fatalf("PencilFloats(100, 5) = %d", got)
	}
	if PencilFloats(0, 5) != 0 {
		t.Fatal("empty pencil should be zero floats")
	}
	// A 1M-point case's longest line (~100 points) locks into a 256 KiB
	// L2 under the pencil discipline — the paper's tuning criterion.
	if !ArenaFitsCache(PencilFloats(100, 5), 256<<10) {
		t.Fatal("pencil scratch should fit a 256 KiB cache")
	}
	// A whole 100x100 plane of the same density does not.
	if ArenaFitsCache(100*100*30, 256<<10) {
		t.Fatal("plane scratch should not fit")
	}
}
