package cachesim

import "fmt"

// Scratch-discipline simulation (§4, concept 4). The original vector
// F3D had to process one plane at a time, so its scratch arrays were
// proportional to a plane of data and "were unlikely to fit into even
// the largest caches"; the tuned code resized them "to hold just a
// single row or column of a single plane", so they lock into cache.
// ScratchTrace replays the two disciplines' memory behaviour against a
// simulated cache and quantifies the miss-rate gap that produced the
// paper's >10x serial speedup on small-cache machines.

// ScratchConfig describes one zone-sweep's scratch usage.
type ScratchConfig struct {
	// Zone dimensions (points).
	JMax, KMax, LMax int
	// ScratchFloatsPerPoint is how many float64 of scratch each grid
	// point of the processing unit needs (eigensystems + characteristic
	// variables + bands ≈ 85 in this repository's solver).
	ScratchFloatsPerPoint int
	// ReusePasses is how many passes the algorithm makes over the
	// scratch of one processing unit (transform, per-component solves,
	// back-transform).
	ReusePasses int
	// Cache geometry.
	CacheBytes, LineBytes, Ways int
}

// DefaultScratchConfig models the J-sweep of a zone with this
// repository's scratch density on a given cache size.
func DefaultScratchConfig(jmax, kmax, lmax, cacheBytes int) ScratchConfig {
	return ScratchConfig{
		JMax: jmax, KMax: kmax, LMax: lmax,
		ScratchFloatsPerPoint: 85,
		ReusePasses:           7, // eig, w, 5 band/solve passes, back-transform
		CacheBytes:            cacheBytes,
		LineBytes:             128,
		Ways:                  2,
	}
}

// Discipline selects the scratch-array sizing.
type Discipline int

const (
	// PlaneScratch sizes scratch for a whole J-K plane (the vector
	// original).
	PlaneScratch Discipline = iota
	// PencilScratch sizes scratch for a single J line (the tuned code).
	PencilScratch
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	switch d {
	case PlaneScratch:
		return "plane-scratch (vector)"
	case PencilScratch:
		return "pencil-scratch (cache-tuned)"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// ScratchReport summarizes a scratch-discipline trace.
type ScratchReport struct {
	Discipline   Discipline
	ScratchBytes int // scratch working set of one processing unit
	Accesses     uint64
	Misses       uint64
	MissRate     float64
	FitsInCache  bool
}

// ScratchTrace simulates one J-direction sweep of the zone under the
// given discipline: for every processing unit (one J-K plane, or one J
// pencil), the unit's scratch is swept ReusePasses times. Misses are
// counted on the configured cache; the field data itself is assumed
// streamed (it misses either way and cancels in the comparison), so the
// trace isolates exactly the scratch-reuse effect the paper tuned.
func ScratchTrace(cfg ScratchConfig, d Discipline) ScratchReport {
	if cfg.JMax < 1 || cfg.KMax < 1 || cfg.LMax < 1 {
		panic(fmt.Sprintf("cachesim: ScratchTrace bad dims %d/%d/%d", cfg.JMax, cfg.KMax, cfg.LMax))
	}
	if cfg.ScratchFloatsPerPoint < 1 || cfg.ReusePasses < 1 {
		panic("cachesim: ScratchTrace needs scratch floats and passes >= 1")
	}
	var unitPoints, units int
	switch d {
	case PlaneScratch:
		unitPoints = cfg.JMax * cfg.KMax
		units = cfg.LMax
	case PencilScratch:
		unitPoints = cfg.JMax
		units = cfg.KMax * cfg.LMax
	default:
		panic(fmt.Sprintf("cachesim: unknown discipline %v", d))
	}
	scratchBytes := unitPoints * cfg.ScratchFloatsPerPoint * 8
	c := NewCache(cfg.CacheBytes, cfg.LineBytes, cfg.Ways)
	// Every unit reuses the same scratch allocation (as real code does),
	// so consecutive units find it warm when it fits.
	for u := 0; u < units; u++ {
		for pass := 0; pass < cfg.ReusePasses; pass++ {
			for b := 0; b < scratchBytes; b += 8 {
				c.Access(uint64(b))
			}
		}
	}
	return ScratchReport{
		Discipline:   d,
		ScratchBytes: scratchBytes,
		Accesses:     c.Accesses(),
		Misses:       c.Misses(),
		MissRate:     c.MissRate(),
		FitsInCache:  scratchBytes <= cfg.CacheBytes,
	}
}

// ScratchSpeedupEstimate returns the predicted serial speedup of the
// pencil discipline over the plane discipline when a cache miss costs
// missCycles and a hit hitCycles: the ratio of per-access average
// costs. It isolates the memory-system share of the paper's measured
// >10x tuning gain.
func ScratchSpeedupEstimate(plane, pencil ScratchReport, hitCycles, missCycles float64) float64 {
	if hitCycles <= 0 || missCycles <= hitCycles {
		panic(fmt.Sprintf("cachesim: need missCycles > hitCycles > 0, got %g/%g", hitCycles, missCycles))
	}
	cost := func(r ScratchReport) float64 {
		return hitCycles + r.MissRate*(missCycles-hitCycles)
	}
	return cost(plane) / cost(pencil)
}
