package cachesim

import "testing"

func BenchmarkCacheAccessHit(b *testing.B) {
	c := NewCache(32<<10, 128, 2)
	c.Access(0)
	for i := 0; i < b.N; i++ {
		c.Access(0)
	}
}

func BenchmarkCacheAccessStream(b *testing.B) {
	c := NewCache(32<<10, 128, 2)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 8)
	}
}

func BenchmarkTLBAccess(b *testing.B) {
	tl := NewTLB(48, 4<<10)
	for i := 0; i < b.N; i++ {
		tl.Access(uint64(i%64) * 4096)
	}
}

func BenchmarkTraceIdeal(b *testing.B) {
	cfg := DefaultTraceConfig(4)
	cfg.JMax, cfg.KMax, cfg.LMax = 32, 32, 32
	for i := 0; i < b.N; i++ {
		Trace(cfg, OrderingIdeal)
	}
}
