package cachesim

import "testing"

func TestScratchDisciplineOn1994Cache(t *testing.T) {
	// Zone 3 of the paper's 1M case (89×75×70) on a 2 MB cache (SGI
	// Power Challenge class, where the paper measured >10x from tuning):
	// the plane scratch (89·75·85·8 ≈ 4.5 MB) overflows the cache and
	// misses on every pass; the pencil scratch (89·85·8 ≈ 60 KB) stays
	// resident.
	// The miss behaviour is steady after the first unit, so a handful of
	// L planes gives the same rates as the full 70 at a fraction of the
	// test cost.
	cfg := DefaultScratchConfig(89, 75, 6, 2<<20)
	plane := ScratchTrace(cfg, PlaneScratch)
	pencil := ScratchTrace(cfg, PencilScratch)

	if plane.FitsInCache {
		t.Fatalf("plane scratch (%d bytes) should overflow a 2MB cache", plane.ScratchBytes)
	}
	if !pencil.FitsInCache {
		t.Fatalf("pencil scratch (%d bytes) should fit a 2MB cache", pencil.ScratchBytes)
	}
	// Plane scratch: LRU streaming through >2x the cache → ~every line
	// access misses (1 miss per 16 accesses at 128B lines).
	if plane.MissRate < 0.05 {
		t.Errorf("plane miss rate %.4f, expected ≈1/16", plane.MissRate)
	}
	// Pencil scratch: only cold misses on the first unit.
	if pencil.MissRate > 0.001 {
		t.Errorf("pencil miss rate %.5f, expected near zero", pencil.MissRate)
	}
	// Both disciplines do the same arithmetic → same access count.
	if plane.Accesses != pencil.Accesses {
		t.Errorf("access counts differ: %d vs %d", plane.Accesses, pencil.Accesses)
	}

	// The memory-system share of the tuning gain at 1994-era miss costs
	// (≈100 cycles) is itself several-fold.
	speedup := ScratchSpeedupEstimate(plane, pencil, 1, 100)
	if speedup < 4 {
		t.Errorf("estimated scratch speedup %.1f, expected several-fold", speedup)
	}
}

func TestScratchDisciplineOnLargeCache(t *testing.T) {
	// On an 8 MB cache (the Origin 2000's), even the plane scratch of a
	// small zone fits — the paper's point that large caches were a key
	// enabling technology.
	cfg := DefaultScratchConfig(30, 25, 20, 8<<20)
	plane := ScratchTrace(cfg, PlaneScratch)
	if !plane.FitsInCache {
		t.Fatalf("small-zone plane scratch should fit 8MB: %d bytes", plane.ScratchBytes)
	}
	if plane.MissRate > 0.001 {
		t.Errorf("resident plane scratch still missing: %.5f", plane.MissRate)
	}
}

func TestScratchPanicsAndStrings(t *testing.T) {
	cfg := DefaultScratchConfig(10, 10, 10, 1<<20)
	for name, fn := range map[string]func(){
		"dims":       func() { bad := cfg; bad.JMax = 0; ScratchTrace(bad, PlaneScratch) },
		"passes":     func() { bad := cfg; bad.ReusePasses = 0; ScratchTrace(bad, PlaneScratch) },
		"discipline": func() { ScratchTrace(cfg, Discipline(9)) },
		"speedup":    func() { ScratchSpeedupEstimate(ScratchReport{}, ScratchReport{}, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	if PlaneScratch.String() == "" || PencilScratch.String() == "" || Discipline(9).String() == "" {
		t.Error("Discipline.String incomplete")
	}
}

func TestConvexExemplarAnecdote(t *testing.T) {
	// §5: on the Convex Exemplar SPP-1000 (1 MB per-processor cache) the
	// vector version of F3D on a 3-million-point problem was killed
	// before finishing 10 steps (on pace for "the better part of a day"),
	// while the serial-tuned code did 10 steps in 70 minutes — at least
	// an order of magnitude. A 3M-point zone (≈144×144×144) has plane
	// scratch ≈14 MB against a 1 MB cache; the pencil scratch is ≈96 KB.
	cfg := DefaultScratchConfig(144, 144, 4, 1<<20)
	plane := ScratchTrace(cfg, PlaneScratch)
	pencil := ScratchTrace(cfg, PencilScratch)
	if plane.FitsInCache {
		t.Fatal("3M-point plane scratch cannot fit a 1MB cache")
	}
	if !pencil.FitsInCache {
		t.Fatal("pencil scratch must fit a 1MB cache")
	}
	// PA-7100-era miss costs were ≈60+ cycles; the memory-system gap
	// alone reaches the anecdote's order of magnitude when combined with
	// the machine's slow remote memory (use the modeled 2µs remote
	// latency at 100 MHz = 200 cycles).
	speedup := ScratchSpeedupEstimate(plane, pencil, 1, 200)
	if speedup < 8 {
		t.Errorf("estimated Exemplar tuning speedup %.1f, anecdote implies >=10x-ish", speedup)
	}
}
