package cachesim_test

import (
	"fmt"

	"repro/internal/cachesim"
)

// The paper's §7 bandwidth arithmetic: one 128-byte line per memory
// latency, with no overlap.
func ExampleEffectiveBandwidthMBs() {
	fmt.Printf("Origin local (310 ns):  %.0f MB/s\n", cachesim.EffectiveBandwidthMBs(310e-9, 128))
	fmt.Printf("Origin remote (945 ns): %.0f MB/s\n", cachesim.EffectiveBandwidthMBs(945e-9, 128))
	fmt.Printf("software DSM (100 µs):  %.1f MB/s\n", cachesim.EffectiveBandwidthMBs(100e-6, 128))
	// Output:
	// Origin local (310 ns):  413 MB/s
	// Origin remote (945 ns): 135 MB/s
	// software DSM (100 µs):  1.3 MB/s
}

// Example 4's unacceptable ordering shares every page among all
// processors — the §7 contention signature.
func ExampleTrace() {
	cfg := cachesim.DefaultTraceConfig(8)
	r := cachesim.Trace(cfg, cachesim.OrderingUnacceptable)
	fmt.Printf("pages shared by all %d processors: %v\n", cfg.Procs, r.MaxSharers == cfg.Procs)
	fmt.Printf("shared-page fraction: %.0f%%\n", 100*r.SharedPageFraction)
	// Output:
	// pages shared by all 8 processors: true
	// shared-page fraction: 100%
}
