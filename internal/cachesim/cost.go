package cachesim

import "fmt"

// CostParams models what a memory access costs on a paged NUMA SMP,
// in the terms §7 uses: local and remote miss latencies, a TLB-refill
// cost, and a contention penalty for pages shared by several
// processors (each extra sharer queues behind the page's home memory,
// "a severe amount of contention with a resulting drop in performance").
type CostParams struct {
	LocalLatencyNS  float64
	RemoteLatencyNS float64
	TLBMissNS       float64
	// ContentionPenalty is the fractional latency increase per extra
	// sharer of a page: effective latency × (1 + penalty·(sharers−1)).
	ContentionPenalty float64
}

// Origin2000Costs returns cost parameters matching the paper's §7
// description of the 128-processor Origin 2000: 310 ns local to 945 ns
// remote latency.
func Origin2000Costs() CostParams {
	return CostParams{
		LocalLatencyNS:    310,
		RemoteLatencyNS:   945,
		TLBMissNS:         200,
		ContentionPenalty: 0.5,
	}
}

// EstimateStallNS estimates the total memory-stall nanoseconds implied
// by a trace report under the cost parameters: cache misses pay the
// remote/local latency mix inflated by the page-contention multiplier,
// and TLB misses pay the refill cost.
func EstimateStallNS(rep Report, p CostParams) float64 {
	if p.LocalLatencyNS < 0 || p.RemoteLatencyNS < 0 || p.TLBMissNS < 0 || p.ContentionPenalty < 0 {
		panic(fmt.Sprintf("cachesim: negative cost parameters %+v", p))
	}
	missLatency := p.LocalLatencyNS*(1-rep.RemoteAccessFraction) +
		p.RemoteLatencyNS*rep.RemoteAccessFraction
	contention := 1.0
	if rep.AvgSharersPerPage > 1 {
		contention += p.ContentionPenalty * (rep.AvgSharersPerPage - 1)
	}
	return float64(rep.CacheMisses)*missLatency*contention + float64(rep.TLBMisses)*p.TLBMissNS
}

// EstimateSlowdown returns the ratio of estimated memory stall between
// two orderings of the same traversal — the predicted performance drop
// of choosing the worse loop ordering (Example 4's "unacceptable" vs
// "ideal").
func EstimateSlowdown(worse, better Report, p CostParams) float64 {
	b := EstimateStallNS(better, p)
	if b == 0 {
		panic("cachesim: EstimateSlowdown baseline has zero stall")
	}
	return EstimateStallNS(worse, p) / b
}
