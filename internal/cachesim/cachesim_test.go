package cachesim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCacheSequentialReuse(t *testing.T) {
	c := NewCache(1<<10, 64, 2)
	// First pass over 512 bytes: one miss per line (8 lines).
	for a := uint64(0); a < 512; a += 8 {
		c.Access(a)
	}
	if c.Misses() != 8 {
		t.Errorf("cold misses = %d, want 8", c.Misses())
	}
	// Second pass: everything fits → no new misses.
	for a := uint64(0); a < 512; a += 8 {
		c.Access(a)
	}
	if c.Misses() != 8 {
		t.Errorf("misses after warm pass = %d, want 8", c.Misses())
	}
	if c.Accesses() != 128 {
		t.Errorf("accesses = %d, want 128", c.Accesses())
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	c := NewCache(1<<10, 64, 2) // 1 KB
	// Stream 4 KB twice: no reuse survives, every line access misses.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 4096; a += 64 {
			c.Access(a)
		}
	}
	if c.Misses() != c.Accesses() {
		t.Errorf("streaming 4x cache size should miss always: %d/%d", c.Misses(), c.Accesses())
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// 2-way cache with 2 sets, 64-byte lines: lines 0, 2, 4 map to set 0.
	c := NewCache(256, 64, 2)
	c.Access(0 * 64) // miss, set0 = {0}
	c.Access(2 * 64) // miss, set0 = {0,2}
	c.Access(0 * 64) // hit, 0 is MRU
	c.Access(4 * 64) // miss, evicts 2 (LRU)
	if !c.Access(0 * 64) {
		t.Error("line 0 should have survived (MRU)")
	}
	if c.Access(2 * 64) {
		t.Error("line 2 should have been evicted (LRU)")
	}
}

func TestCacheResetAndRates(t *testing.T) {
	c := NewCache(1<<10, 64, 1)
	if c.MissRate() != 0 {
		t.Error("empty cache MissRate should be 0")
	}
	c.Access(0)
	c.Access(0)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %g, want 0.5", got)
	}
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Error("Reset did not clear counters")
	}
	if !c.Access(0) == false {
		t.Error("after Reset the first access must miss")
	}
}

func TestCachePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero size":    func() { NewCache(0, 64, 1) },
		"bad multiple": func() { NewCache(100, 64, 1) },
		"npo2 line":    func() { NewCache(960, 96, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTLBBehavior(t *testing.T) {
	tl := NewTLB(4, 4096)
	// Touch 4 pages: 4 misses; re-touch: hits.
	for p := uint64(0); p < 4; p++ {
		tl.Access(p * 4096)
	}
	for p := uint64(0); p < 4; p++ {
		if !tl.Access(p * 4096) {
			t.Errorf("page %d should hit", p)
		}
	}
	if tl.Misses() != 4 {
		t.Errorf("misses = %d, want 4", tl.Misses())
	}
	// Fifth page evicts the LRU (page 0).
	tl.Access(4 * 4096)
	if tl.Access(0) {
		t.Error("page 0 should have been evicted")
	}
	if tl.MissRate() <= 0 {
		t.Error("MissRate should be positive")
	}
}

func TestNUMAHomesAndNodes(t *testing.T) {
	n := NewNUMA(4, 2, 4096)
	// Pages round-robin across nodes.
	for pg := uint64(0); pg < 16; pg++ {
		if got, want := n.HomeNode(pg*4096), int(pg%4); got != want {
			t.Errorf("page %d homed on %d, want %d", pg, got, want)
		}
	}
	if n.NodeOf(0) != 0 || n.NodeOf(1) != 0 || n.NodeOf(2) != 1 || n.NodeOf(7) != 3 {
		t.Error("NodeOf wrong")
	}
}

func TestEffectiveBandwidthPaperNumbers(t *testing.T) {
	// §7: 310–945 ns latency with 128-byte lines gives "412 MB/second
	// down to 135 MB/second".
	lo := EffectiveBandwidthMBs(945e-9, 128)
	hi := EffectiveBandwidthMBs(310e-9, 128)
	if math.Abs(hi-412.9) > 2 {
		t.Errorf("best-case bandwidth = %.1f MB/s, paper says 412", hi)
	}
	if math.Abs(lo-135.4) > 2 {
		t.Errorf("worst-case bandwidth = %.1f MB/s, paper says 135", lo)
	}
	// §8: 128-byte coherency granularity at 100 µs latency gives
	// 1.3 MB/s per processor.
	dsm := EffectiveBandwidthMBs(100e-6, 128)
	if math.Abs(dsm-1.28) > 0.05 {
		t.Errorf("software-DSM bandwidth = %.2f MB/s, paper says 1.3", dsm)
	}
}

func TestExample4Orderings(t *testing.T) {
	cfg := DefaultTraceConfig(4)
	ideal := Trace(cfg, OrderingIdeal)
	acceptable := Trace(cfg, OrderingAcceptable)
	unacceptable := Trace(cfg, OrderingUnacceptable)

	// All three traverse the same array once.
	want := uint64(cfg.JMax * cfg.KMax * cfg.LMax)
	for _, r := range []Report{ideal, acceptable, unacceptable} {
		if r.Accesses != want {
			t.Fatalf("%v: %d accesses, want %d", r.Ordering, r.Accesses, want)
		}
	}

	// Cache behaviour: (a) and (b) are unit-stride (≈ 1 miss per line =
	// 16 accesses); (c) is a large-stride gather that misses far more.
	if ideal.CacheMissRate > 0.08 {
		t.Errorf("ideal miss rate %.3f too high", ideal.CacheMissRate)
	}
	if acceptable.CacheMissRate > 0.08 {
		t.Errorf("acceptable miss rate %.3f too high", acceptable.CacheMissRate)
	}
	if unacceptable.CacheMissRate < 4*ideal.CacheMissRate {
		t.Errorf("unacceptable miss rate %.3f not clearly worse than ideal %.3f",
			unacceptable.CacheMissRate, ideal.CacheMissRate)
	}

	// TLB: the gather touches a new page almost every access.
	if unacceptable.TLBMissRate < 5*ideal.TLBMissRate {
		t.Errorf("unacceptable TLB miss rate %.4f not clearly worse than ideal %.4f",
			unacceptable.TLBMissRate, ideal.TLBMissRate)
	}

	// Page sharing (the §7 contention signal): contiguous slabs share
	// pages only at slab boundaries; the gather shares every page among
	// all processors.
	if ideal.SharedPageFraction > 0.25 {
		t.Errorf("ideal shares %.2f of pages, expected few", ideal.SharedPageFraction)
	}
	if unacceptable.SharedPageFraction < 0.9 {
		t.Errorf("unacceptable shares %.2f of pages, expected nearly all", unacceptable.SharedPageFraction)
	}
	if unacceptable.MaxSharers != cfg.Procs {
		t.Errorf("unacceptable MaxSharers = %d, want %d", unacceptable.MaxSharers, cfg.Procs)
	}
	if ideal.AvgSharersPerPage >= unacceptable.AvgSharersPerPage {
		t.Error("sharing should increase from ideal to unacceptable")
	}
	// Ordering of contention severity: a ≤ b ≤ c.
	if !(ideal.AvgSharersPerPage <= acceptable.AvgSharersPerPage+1e-12 &&
		acceptable.AvgSharersPerPage <= unacceptable.AvgSharersPerPage+1e-12) {
		t.Errorf("sharing not ordered: %.2f, %.2f, %.2f",
			ideal.AvgSharersPerPage, acceptable.AvgSharersPerPage, unacceptable.AvgSharersPerPage)
	}
}

func TestTraceSingleProcessorNoSharing(t *testing.T) {
	cfg := DefaultTraceConfig(1)
	for _, ord := range []Ordering{OrderingIdeal, OrderingAcceptable, OrderingUnacceptable} {
		r := Trace(cfg, ord)
		if r.SharedPageFraction != 0 || r.MaxSharers != 1 {
			t.Errorf("%v: sharing reported with one processor: %+v", ord, r)
		}
	}
}

func TestTraceCoversArrayProperty(t *testing.T) {
	// Every ordering must touch every element exactly once; total
	// accesses and pages touched are invariant.
	f := func(pj, pk, pl, pp uint8) bool {
		cfg := DefaultTraceConfig(int(pp%4) + 1)
		cfg.JMax = int(pj%12) + 2
		cfg.KMax = int(pk%12) + 2
		cfg.LMax = int(pl%12) + 2
		want := uint64(cfg.JMax * cfg.KMax * cfg.LMax)
		pages := -1
		for _, ord := range []Ordering{OrderingIdeal, OrderingAcceptable, OrderingUnacceptable} {
			r := Trace(cfg, ord)
			if r.Accesses != want {
				return false
			}
			if pages == -1 {
				pages = r.PagesTouched
			} else if r.PagesTouched != pages {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOrderingString(t *testing.T) {
	for _, ord := range []Ordering{OrderingIdeal, OrderingAcceptable, OrderingUnacceptable} {
		if ord.String() == "" {
			t.Error("empty ordering string")
		}
	}
	if Ordering(9).String() != "Ordering(9)" {
		t.Error("unknown ordering string wrong")
	}
}

func TestLineSharingOrdering(t *testing.T) {
	// Line-level (false) sharing follows the same severity ordering as
	// page sharing: contiguous slabs share only boundary lines; the
	// STRIDE-N gather shares essentially every line it spans with every
	// processor that visits it.
	cfg := DefaultTraceConfig(4)
	// Dimensions chosen so processor slab boundaries do NOT align with
	// 128-byte lines (72/4 = 18 elements = 144 bytes per J slab).
	cfg.JMax, cfg.KMax, cfg.LMax = 72, 60, 68
	ideal := Trace(cfg, OrderingIdeal)
	unacceptable := Trace(cfg, OrderingUnacceptable)
	if ideal.LinesTouched == 0 || unacceptable.LinesTouched == 0 {
		t.Fatal("no lines recorded")
	}
	if ideal.LinesTouched != unacceptable.LinesTouched {
		t.Errorf("line counts differ: %d vs %d (same array)", ideal.LinesTouched, unacceptable.LinesTouched)
	}
	if ideal.SharedLineFraction > 0.05 {
		t.Errorf("ideal shares %.3f of lines, expected nearly none", ideal.SharedLineFraction)
	}
	// Each 128-byte line spans 16 J-contiguous elements; with J slabs of
	// 18 elements, adjacent owners meet inside lines at every slab
	// boundary — the false-sharing signature.
	if unacceptable.AvgSharersPerLine <= ideal.AvgSharersPerLine {
		t.Errorf("line sharing should increase: %.3f vs %.3f",
			ideal.AvgSharersPerLine, unacceptable.AvgSharersPerLine)
	}
}

func TestEstimateStallOrdering(t *testing.T) {
	cfg := DefaultTraceConfig(8)
	ideal := Trace(cfg, OrderingIdeal)
	acceptable := Trace(cfg, OrderingAcceptable)
	unacceptable := Trace(cfg, OrderingUnacceptable)
	p := Origin2000Costs()
	si := EstimateStallNS(ideal, p)
	sa := EstimateStallNS(acceptable, p)
	su := EstimateStallNS(unacceptable, p)
	if !(si <= sa && sa <= su) {
		t.Errorf("stall estimates not ordered: %g, %g, %g", si, sa, su)
	}
	// The paper's experience: the bad ordering is not a few percent
	// slower but catastrophically slower.
	slow := EstimateSlowdown(unacceptable, ideal, p)
	if slow < 10 {
		t.Errorf("unacceptable/ideal slowdown = %.1f, expected an order of magnitude", slow)
	}
}

func TestEstimateStallComponents(t *testing.T) {
	p := CostParams{LocalLatencyNS: 100, RemoteLatencyNS: 300, TLBMissNS: 50, ContentionPenalty: 1}
	rep := Report{
		CacheMisses:          10,
		TLBMisses:            4,
		RemoteAccessFraction: 0.5,
		AvgSharersPerPage:    3,
	}
	// latency mix = 200; contention = 1 + 1*(3-1) = 3; cache = 10*200*3
	// = 6000; TLB = 4*50 = 200.
	if got := EstimateStallNS(rep, p); got != 6200 {
		t.Errorf("EstimateStallNS = %g, want 6200", got)
	}
	// No sharing → no contention multiplier.
	rep.AvgSharersPerPage = 1
	if got := EstimateStallNS(rep, p); got != 2200 {
		t.Errorf("EstimateStallNS without sharing = %g, want 2200", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative params should panic")
		}
	}()
	EstimateStallNS(rep, CostParams{LocalLatencyNS: -1})
}

func TestEstimateSlowdownPanicsOnZeroBaseline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero baseline should panic")
		}
	}()
	EstimateSlowdown(Report{}, Report{}, Origin2000Costs())
}
