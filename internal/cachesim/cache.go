// Package cachesim provides the memory-hierarchy substrate of the
// reproduction: a set-associative cache simulator, a TLB simulator, a
// page-interleaved NUMA model, and tracers for the three memory-access
// orderings of the paper's Example 4 (ideal, acceptable, unacceptable).
//
// The paper's serial-tuning methodology estimates cache and TLB cost by
// differencing prof and pixie profiles (§6); on systems without
// hardware counters it instruments the code. This package plays the
// role of those tools: it attributes memory-hierarchy cost to loop
// orderings and detects the page-sharing contention of §7 that "no
// amount of page migration solves".
package cachesim

import "fmt"

// Cache is a set-associative cache with LRU replacement. Addresses are
// byte addresses; each access touches one line.
type Cache struct {
	lineBytes int
	sets      int
	ways      int
	lineShift uint
	// tags[set*ways+way] holds the line tag; lru[set*ways+way] the age
	// (0 = most recent). A zero valid bit is folded into tags via +1.
	tags  []uint64
	valid []bool
	lru   []uint8

	accesses uint64
	misses   uint64
}

// NewCache builds a cache of the given total size, line size and
// associativity. Size and line must be powers of two with
// size >= line·ways.
func NewCache(sizeBytes, lineBytes, ways int) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cachesim: NewCache bad params %d/%d/%d", sizeBytes, lineBytes, ways))
	}
	if sizeBytes%(lineBytes*ways) != 0 {
		panic(fmt.Sprintf("cachesim: size %d not divisible by line*ways %d", sizeBytes, lineBytes*ways))
	}
	if lineBytes&(lineBytes-1) != 0 {
		panic(fmt.Sprintf("cachesim: line size %d not a power of two", lineBytes))
	}
	sets := sizeBytes / (lineBytes * ways)
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &Cache{
		lineBytes: lineBytes,
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		tags:      make([]uint64, sets*ways),
		valid:     make([]bool, sets*ways),
		lru:       make([]uint8, sets*ways),
	}
}

// Access simulates one access to the byte address and reports whether
// it hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	line := addr >> c.lineShift
	set := int(line % uint64(c.sets))
	base := set * c.ways
	// Search for the tag.
	hitWay := -1
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			hitWay = w
			break
		}
	}
	if hitWay >= 0 {
		c.touch(base, hitWay)
		return true
	}
	c.misses++
	// Replace the LRU way.
	victim, worst := 0, uint8(0)
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.lru[base+w] >= worst {
			victim, worst = w, c.lru[base+w]
		}
	}
	c.tags[base+victim] = line
	c.valid[base+victim] = true
	// A fresh line enters as oldest so that promoting it ages every
	// other way in the set.
	c.lru[base+victim] = uint8(c.ways - 1)
	c.touch(base, victim)
	return false
}

// touch promotes a way to most-recently-used.
func (c *Cache) touch(base, way int) {
	old := c.lru[base+way]
	for w := 0; w < c.ways; w++ {
		if c.lru[base+w] < old {
			c.lru[base+w]++
		}
	}
	c.lru[base+way] = 0
}

// Accesses returns the access count.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses/accesses (0 if no accesses).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	c.accesses, c.misses = 0, 0
}

// TLB is a fully associative translation lookaside buffer with LRU
// replacement over pages.
type TLB struct {
	pageBytes int
	entries   []uint64
	valid     []bool
	age       []int
	clock     int

	accesses uint64
	misses   uint64
}

// NewTLB builds a TLB with the given entry count and page size.
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 || pageBytes <= 0 {
		panic(fmt.Sprintf("cachesim: NewTLB bad params %d/%d", entries, pageBytes))
	}
	return &TLB{
		pageBytes: pageBytes,
		entries:   make([]uint64, entries),
		valid:     make([]bool, entries),
		age:       make([]int, entries),
	}
}

// Access simulates one translation and reports whether it hit.
func (t *TLB) Access(addr uint64) bool {
	t.accesses++
	t.clock++
	page := addr / uint64(t.pageBytes)
	for i := range t.entries {
		if t.valid[i] && t.entries[i] == page {
			t.age[i] = t.clock
			return true
		}
	}
	t.misses++
	victim := 0
	for i := range t.entries {
		if !t.valid[i] {
			victim = i
			break
		}
		if t.age[i] < t.age[victim] {
			victim = i
		}
	}
	t.entries[victim] = page
	t.valid[victim] = true
	t.age[victim] = t.clock
	return false
}

// Accesses returns the access count.
func (t *TLB) Accesses() uint64 { return t.accesses }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.misses }

// MissRate returns misses/accesses (0 if no accesses).
func (t *TLB) MissRate() float64 {
	if t.accesses == 0 {
		return 0
	}
	return float64(t.misses) / float64(t.accesses)
}
