package cachesim

import "fmt"

// Scratch arenas (§4, concept 4, made operational). ScratchTrace
// quantifies why pencil-sized scratch locks into cache; Arena is the
// allocator that enforces the discipline: one contiguous block sized
// for a pencil's working set, carved into the kernel scratch slices up
// front, zero allocations afterwards. Keeping every band of a pencil in
// one block also keeps the tuned batch solvers' five lanes within a few
// cache lines of each other.

// Arena is a bump allocator over one contiguous float64 block. It is
// not safe for concurrent use; give each worker its own arena (exactly
// as each worker owns its pencil).
type Arena struct {
	buf []float64
	off int
}

// NewArena returns an arena holding the given number of float64s.
func NewArena(floats int) *Arena {
	if floats < 0 {
		panic(fmt.Sprintf("cachesim: NewArena needs floats >= 0, got %d", floats))
	}
	return &Arena{buf: make([]float64, floats)}
}

// F64 carves a zeroed slice of n float64s out of the arena. The slice
// has capacity exactly n, so kernel code cannot grow into a neighbor's
// scratch. Exhausting the arena panics: scratch sizing is a static
// property of the solver and running out is a bug, not a runtime
// condition.
func (a *Arena) F64(n int) []float64 {
	if n < 0 {
		panic(fmt.Sprintf("cachesim: Arena.F64 needs n >= 0, got %d", n))
	}
	if a.off+n > len(a.buf) {
		panic(fmt.Sprintf("cachesim: arena exhausted: %d in use + %d requested > %d",
			a.off, n, len(a.buf)))
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// Reset returns the arena to empty without zeroing: slices handed out
// earlier must not be used afterwards.
func (a *Arena) Reset() { a.off = 0 }

// InUse returns how many float64s have been carved out.
func (a *Arena) InUse() int { return a.off }

// Cap returns the arena's total capacity in float64s.
func (a *Arena) Cap() int { return len(a.buf) }

// PencilFloats returns the float64 count of one pencil's band scratch
// for lines of up to nmax points: lanes characteristic-variable rows
// plus lanes of each tridiagonal and outer pentadiagonal band (w, a,
// b, c, e, f). This is the contiguous block the cache-tuned solver
// carves per worker; with the default scratch density it is the
// working set ScratchTrace shows locking into even small caches.
func PencilFloats(nmax, lanes int) int {
	if nmax < 0 || lanes < 1 {
		panic(fmt.Sprintf("cachesim: PencilFloats needs nmax >= 0 and lanes >= 1, got %d, %d", nmax, lanes))
	}
	const bands = 6 // w + the five band families a, b, c, e, f
	return bands * lanes * nmax
}

// ArenaFitsCache reports whether an arena of the given size locks into
// a cache of cacheBytes — the pencil-discipline criterion the paper's
// serial tuning targets.
func ArenaFitsCache(floats, cacheBytes int) bool {
	return floats*8 <= cacheBytes
}
