package cachesim

import "fmt"

// NUMA models the page-granular memory placement of scalable SMPs
// (§7: "on systems that group memory and processors into nodes ... the
// unit of interleaving becomes a page of memory"). Pages are homed
// round-robin across nodes; processors are grouped onto nodes in
// contiguous blocks.
type NUMA struct {
	Nodes        int
	ProcsPerNode int
	PageBytes    int
}

// NewNUMA builds a NUMA layout.
func NewNUMA(nodes, procsPerNode, pageBytes int) NUMA {
	if nodes <= 0 || procsPerNode <= 0 || pageBytes <= 0 {
		panic(fmt.Sprintf("cachesim: NewNUMA bad params %d/%d/%d", nodes, procsPerNode, pageBytes))
	}
	return NUMA{Nodes: nodes, ProcsPerNode: procsPerNode, PageBytes: pageBytes}
}

// HomeNode returns the node a byte address's page is homed on.
func (n NUMA) HomeNode(addr uint64) int {
	return int((addr / uint64(n.PageBytes)) % uint64(n.Nodes))
}

// NodeOf returns the node a processor belongs to.
func (n NUMA) NodeOf(proc int) int {
	if proc < 0 {
		panic(fmt.Sprintf("cachesim: NodeOf negative proc %d", proc))
	}
	return (proc / n.ProcsPerNode) % n.Nodes
}

// Page returns the page number of an address.
func (n NUMA) Page(addr uint64) uint64 { return addr / uint64(n.PageBytes) }

// EffectiveBandwidthMBs returns the usable per-processor bandwidth in
// MB/second of a memory system that delivers one cache line per
// latency, without overlap: lineBytes / latency. This is the arithmetic
// behind the paper's §7 figures — a 128-byte line at the Origin 2000's
// 310–945 ns latency range gives 413 down to 135 MB/s — and behind the
// §8 observation that software DSM with 128-byte granularity at 100 µs
// delivers only 1.3 MB/s per processor.
func EffectiveBandwidthMBs(latencySeconds float64, lineBytes int) float64 {
	if latencySeconds <= 0 || lineBytes <= 0 {
		panic(fmt.Sprintf("cachesim: EffectiveBandwidthMBs bad params %g/%d", latencySeconds, lineBytes))
	}
	return float64(lineBytes) / latencySeconds / 1e6
}
