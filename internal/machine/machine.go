// Package machine holds models of the shared-memory systems the paper
// ran on and tuned with (Table 5 and the two evaluation platforms of
// Table 4). A Machine captures the parameters the paper's performance
// arguments turn on: clock rate, peak and delivered per-processor
// floating-point rates, the synchronization cost of a parallel region,
// and the NUMA latency/bandwidth and page-interleaving parameters of §7.
//
// Delivered rates are calibrated from the paper's own single-processor
// measurements of the tuned F3D (Table 4), so the simulator anchored on
// them reproduces the paper's absolute scale as well as its shape.
package machine

import "fmt"

// Machine describes one shared-memory system.
type Machine struct {
	Name string
	// MaxProcs is the largest configuration reported.
	MaxProcs int
	// ClockMHz is the processor clock.
	ClockMHz float64
	// PeakMFLOPSPerProc is the marketing peak per processor.
	PeakMFLOPSPerProc float64
	// DeliveredMFLOPSPerProc is the measured per-processor rate of the
	// tuned F3D on one processor (Table 4 calibration).
	DeliveredMFLOPSPerProc float64
	// SyncBaseCycles and SyncPerProcCycles model the cost of one
	// synchronization event as base + perProc·P. The paper quotes a
	// range of 2,000 to 1,000,000 cycles depending on machine and load
	// (§3) and notes the cost tracks the memory system, not the
	// processor.
	SyncBaseCycles    float64
	SyncPerProcCycles float64
	// LocalLatencyNS and RemoteLatencyNS bound the NUMA memory latency
	// (§7 quotes 310–945 ns for a 128-processor Origin 2000).
	LocalLatencyNS, RemoteLatencyNS float64
	// PageBytes is the unit of memory interleaving across nodes (§7:
	// "the unit of interleaving becomes a page of memory").
	PageBytes int
	// CacheBytes and CacheLineBytes describe the per-processor cache
	// (the "large caches" the conclusion names as a key enabler).
	CacheBytes, CacheLineBytes int
}

// CyclesPerFlop returns the cycles one delivered floating-point
// operation costs on this machine for F3D-like code.
func (m *Machine) CyclesPerFlop() float64 {
	if m.DeliveredMFLOPSPerProc <= 0 {
		panic(fmt.Sprintf("machine: %s has no delivered rate", m.Name))
	}
	return m.ClockMHz / m.DeliveredMFLOPSPerProc
}

// SyncCostCycles returns the modeled cost in cycles of one
// synchronization event when procs processors take part.
func (m *Machine) SyncCostCycles(procs int) float64 {
	if procs < 1 {
		panic(fmt.Sprintf("machine: SyncCostCycles procs must be >= 1, got %d", procs))
	}
	return m.SyncBaseCycles + m.SyncPerProcCycles*float64(procs)
}

// Efficiency returns delivered/peak per processor.
func (m *Machine) Efficiency() float64 {
	return m.DeliveredMFLOPSPerProc / m.PeakMFLOPSPerProc
}

// WithDelivered returns a copy of the machine with a different
// calibrated delivered rate. The paper's large test case runs at a
// lower per-processor rate than the small one (more of the working set
// misses the cache); the Table 4 reproduction derates accordingly.
func (m *Machine) WithDelivered(mflops float64) *Machine {
	if mflops <= 0 {
		panic(fmt.Sprintf("machine: WithDelivered rate must be > 0, got %g", mflops))
	}
	cp := *m
	cp.DeliveredMFLOPSPerProc = mflops
	return &cp
}

// Origin2000R12K is the R12000-based SGI Origin 2000 of Table 4
// (128 processors, 300 MHz). Delivered rate from the 1-processor,
// 1-million-point row: 2.37E2 MFLOPS.
func Origin2000R12K() *Machine {
	return &Machine{
		Name:                   "SGI Origin 2000 (R12000, 300 MHz)",
		MaxProcs:               128,
		ClockMHz:               300,
		PeakMFLOPSPerProc:      600,
		DeliveredMFLOPSPerProc: 237,
		SyncBaseCycles:         20_000,
		SyncPerProcCycles:      800,
		LocalLatencyNS:         310,
		RemoteLatencyNS:        945,
		PageBytes:              16 << 10,
		CacheBytes:             8 << 20,
		CacheLineBytes:         128,
	}
}

// SunHPC10000 is the UltraSPARC II-based SUN HPC 10000 of Table 4
// (64 processors, 400 MHz). Delivered rate from the 1-processor,
// 1-million-point row: 1.80E2 MFLOPS.
func SunHPC10000() *Machine {
	return &Machine{
		Name:                   "SUN HPC 10000 (UltraSPARC II, 400 MHz)",
		MaxProcs:               64,
		ClockMHz:               400,
		PeakMFLOPSPerProc:      800,
		DeliveredMFLOPSPerProc: 180,
		SyncBaseCycles:         15_000,
		SyncPerProcCycles:      1_200,
		LocalLatencyNS:         400,
		RemoteLatencyNS:        600,
		PageBytes:              8 << 10,
		CacheBytes:             4 << 20,
		CacheLineBytes:         64,
	}
}

// HPV2500 is the 16-processor, 440-MHz HP V2500 that appears in
// Figure 2 (run with the Guide OpenMP compiler). Its delivered rate is
// back-solved from the figure's ~16-processor performance.
func HPV2500() *Machine {
	return &Machine{
		Name:                   "HP V2500 (PA-8500, 440 MHz)",
		MaxProcs:               16,
		ClockMHz:               440,
		PeakMFLOPSPerProc:      1760,
		DeliveredMFLOPSPerProc: 210,
		SyncBaseCycles:         12_000,
		SyncPerProcCycles:      1_000,
		LocalLatencyNS:         350,
		RemoteLatencyNS:        550,
		PageBytes:              4 << 10,
		CacheBytes:             1 << 20,
		CacheLineBytes:         64,
	}
}

// Origin2000R10K195 is the 195-MHz R10000 Origin 2000 that appears in
// Figure 3 (64- and 128-processor systems).
func Origin2000R10K195() *Machine {
	return &Machine{
		Name:                   "SGI Origin 2000 (R10000, 195 MHz)",
		MaxProcs:               128,
		ClockMHz:               195,
		PeakMFLOPSPerProc:      390,
		DeliveredMFLOPSPerProc: 150,
		SyncBaseCycles:         20_000,
		SyncPerProcCycles:      900,
		LocalLatencyNS:         310,
		RemoteLatencyNS:        945,
		PageBytes:              16 << 10,
		CacheBytes:             4 << 20,
		CacheLineBytes:         128,
	}
}

// ConvexExemplarSPP1000 is the heavily NUMA Convex Exemplar on which
// the vector version was effectively unrunnable (§5) and the NUMA
// contention problems were never solved (§6).
func ConvexExemplarSPP1000() *Machine {
	return &Machine{
		Name:                   "Convex Exemplar SPP-1000 (PA-7100, 100 MHz)",
		MaxProcs:               64,
		ClockMHz:               100,
		PeakMFLOPSPerProc:      200,
		DeliveredMFLOPSPerProc: 35,
		SyncBaseCycles:         50_000,
		SyncPerProcCycles:      5_000,
		LocalLatencyNS:         500,
		RemoteLatencyNS:        2_000,
		PageBytes:              4 << 10,
		CacheBytes:             1 << 20,
		CacheLineBytes:         32,
	}
}

// TuningSystem is one row of Table 5: a system used in tuning and
// parallelizing the RISC-optimized shared-memory version of F3D.
type TuningSystem struct {
	Vendor string
	Detail string
}

// TuningSystems returns the paper's Table 5.
func TuningSystems() []TuningSystem {
	return []TuningSystem{
		{"SGI", "R4400-based Challenge and Indigo 2"},
		{"SGI", "R8000- and R10000-based Power Challenges"},
		{"SGI", "R10000- and R12000-based Origin 2000s"},
		{"SUN", "SuperSPARC-based SPARCCenter 2000"},
		{"SUN", "UltraSPARC II-based HPC 10000"},
		{"Convex", "HP PA-7100-based SPP-1000 and HP PA-7200-based SPP-1600"},
		{"HP", "PA-8500-based V-Class"},
	}
}

// Evaluated returns the machines that appear in Table 4 and
// Figures 2–3, in presentation order.
func Evaluated() []*Machine {
	return []*Machine{Origin2000R12K(), SunHPC10000(), HPV2500(), Origin2000R10K195()}
}
