package machine

import (
	"math"
	"testing"
)

func TestCalibrationAgainstPaperRows(t *testing.T) {
	// The delivered rates are Table 4's single-processor MFLOPS columns.
	sgi := Origin2000R12K()
	if sgi.DeliveredMFLOPSPerProc != 237 {
		t.Errorf("SGI delivered = %g, Table 4 says 2.37E2", sgi.DeliveredMFLOPSPerProc)
	}
	sun := SunHPC10000()
	if sun.DeliveredMFLOPSPerProc != 180 {
		t.Errorf("SUN delivered = %g, Table 4 says 1.80E2", sun.DeliveredMFLOPSPerProc)
	}
	// Peak speeds from §5: "The peak speed of a processor on the SUN
	// system is 800 MFLOPS and 600 MFLOPS on the SGI system."
	if sgi.PeakMFLOPSPerProc != 600 || sun.PeakMFLOPSPerProc != 800 {
		t.Error("peak rates disagree with the paper")
	}
	// Configurations from Table 4's caption: 128 procs at 300 MHz (SGI),
	// 64 at 400 MHz (SUN).
	if sgi.MaxProcs != 128 || sgi.ClockMHz != 300 {
		t.Error("SGI configuration wrong")
	}
	if sun.MaxProcs != 64 || sun.ClockMHz != 400 {
		t.Error("SUN configuration wrong")
	}
	// §7 NUMA latency range: 310-945 ns on the 128-proc Origin.
	if sgi.LocalLatencyNS != 310 || sgi.RemoteLatencyNS != 945 {
		t.Error("Origin NUMA latencies disagree with §7")
	}
}

func TestCyclesPerFlop(t *testing.T) {
	m := Origin2000R12K()
	want := 300.0 / 237.0
	if got := m.CyclesPerFlop(); math.Abs(got-want) > 1e-12 {
		t.Errorf("CyclesPerFlop = %g, want %g", got, want)
	}
	bad := *m
	bad.DeliveredMFLOPSPerProc = 0
	defer func() {
		if recover() == nil {
			t.Error("zero delivered rate should panic")
		}
	}()
	bad.CyclesPerFlop()
}

func TestSyncCostModel(t *testing.T) {
	m := Origin2000R12K()
	if m.SyncCostCycles(1) >= m.SyncCostCycles(128) {
		t.Error("sync cost should grow with processors")
	}
	if got, want := m.SyncCostCycles(10), m.SyncBaseCycles+10*m.SyncPerProcCycles; got != want {
		t.Errorf("SyncCostCycles(10) = %g, want %g", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("procs < 1 should panic")
		}
	}()
	m.SyncCostCycles(0)
}

func TestWithDelivered(t *testing.T) {
	m := Origin2000R12K()
	d := m.WithDelivered(179)
	if d.DeliveredMFLOPSPerProc != 179 {
		t.Errorf("derated rate = %g", d.DeliveredMFLOPSPerProc)
	}
	if m.DeliveredMFLOPSPerProc != 237 {
		t.Error("WithDelivered mutated the receiver")
	}
	if d.Name != m.Name || d.ClockMHz != m.ClockMHz {
		t.Error("WithDelivered lost other fields")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive rate should panic")
		}
	}()
	m.WithDelivered(0)
}

func TestEfficiencyOrdering(t *testing.T) {
	// The paper's observation: the SUN's faster peak does not buy more
	// delivered performance — its efficiency is lower than the SGI's.
	sgi, sun := Origin2000R12K(), SunHPC10000()
	if !(sun.Efficiency() < sgi.Efficiency()) {
		t.Errorf("expected SUN efficiency (%.2f) below SGI (%.2f)", sun.Efficiency(), sgi.Efficiency())
	}
}

func TestRegistries(t *testing.T) {
	if len(TuningSystems()) != 7 {
		t.Errorf("Table 5 has %d rows, want 7", len(TuningSystems()))
	}
	ev := Evaluated()
	if len(ev) != 4 {
		t.Fatalf("Evaluated lists %d machines", len(ev))
	}
	seen := map[string]bool{}
	for _, m := range ev {
		if m.Name == "" || seen[m.Name] {
			t.Errorf("bad or duplicate machine name %q", m.Name)
		}
		seen[m.Name] = true
	}
	// The Exemplar is modeled but not part of the evaluation curves.
	ex := ConvexExemplarSPP1000()
	if ex.Efficiency() >= Origin2000R12K().Efficiency() {
		t.Error("the Exemplar should model the paper's poor experience on it")
	}
}
