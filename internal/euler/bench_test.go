package euler

import "testing"

var benchState = Prim{Rho: 1.1, U: 0.6, V: -0.2, W: 0.1, P: 0.9}

func BenchmarkFlux(b *testing.B) {
	u := benchState.Cons()
	for i := 0; i < b.N; i++ {
		_ = Flux(X, u)
	}
}

func BenchmarkJacobian(b *testing.B) {
	u := benchState.Cons()
	for i := 0; i < b.N; i++ {
		_ = Jacobian(X, u)
	}
}

func BenchmarkEigensystem(b *testing.B) {
	u := benchState.Cons()
	for i := 0; i < b.N; i++ {
		_ = Eigensystem(Z, u)
	}
}

func BenchmarkPrimFromCons(b *testing.B) {
	u := benchState.Cons()
	for i := 0; i < b.N; i++ {
		_ = PrimFromCons(u)
	}
}

func BenchmarkSpectralRadius(b *testing.B) {
	u := benchState.Cons()
	for i := 0; i < b.N; i++ {
		_ = SpectralRadius(Y, u)
	}
}
