package euler

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func randPrim(rng *rand.Rand) Prim {
	return Prim{
		Rho: 0.3 + rng.Float64()*2,
		U:   rng.Float64()*4 - 2,
		V:   rng.Float64()*4 - 2,
		W:   rng.Float64()*4 - 2,
		P:   0.3 + rng.Float64()*3,
	}
}

func TestConsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPrim(rng)
		q := PrimFromCons(p.Cons())
		tol := 1e-12
		return math.Abs(p.Rho-q.Rho) < tol && math.Abs(p.U-q.U) < tol &&
			math.Abs(p.V-q.V) < tol && math.Abs(p.W-q.W) < tol && math.Abs(p.P-q.P) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPrimFromConsPanicsOnBadDensity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PrimFromCons(linalg.Vec5{-1, 0, 0, 0, 1})
}

func TestSoundSpeedPanicsOnBadState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Prim{Rho: 1, P: -1}.SoundSpeed()
}

func TestFluxKnownValues(t *testing.T) {
	// Stationary gas: flux is pure pressure in the momentum component.
	p := Prim{Rho: 1, P: 1}
	u := p.Cons()
	for _, a := range []Axis{X, Y, Z} {
		f := Flux(a, u)
		for c := 0; c < NC; c++ {
			want := 0.0
			if c == int(a)+1 {
				want = 1 // the pressure term
			}
			if math.Abs(f[c]-want) > 1e-14 {
				t.Errorf("axis %v comp %d: flux %g, want %g", a, c, f[c], want)
			}
		}
	}
}

// fdJacobian computes the flux Jacobian by central differences, the
// independent reference for the analytic Jacobian.
func fdJacobian(a Axis, u linalg.Vec5) linalg.Mat5 {
	var m linalg.Mat5
	const h = 1e-6
	for j := 0; j < NC; j++ {
		up, um := u, u
		d := h * math.Max(1, math.Abs(u[j]))
		up[j] += d
		um[j] -= d
		fp := Flux(a, up)
		fm := Flux(a, um)
		for i := 0; i < NC; i++ {
			m[i*5+j] = (fp[i] - fm[i]) / (2 * d)
		}
	}
	return m
}

func TestJacobianMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		u := randPrim(rng).Cons()
		for _, a := range []Axis{X, Y, Z} {
			an := Jacobian(a, u)
			fd := fdJacobian(a, u)
			for i := range an {
				if math.Abs(an[i]-fd[i]) > 1e-4 {
					t.Fatalf("trial %d axis %v entry %d: analytic %g, fd %g", trial, a, i, an[i], fd[i])
				}
			}
		}
	}
}

func TestJacobianHomogeneity(t *testing.T) {
	// The Euler fluxes are homogeneous of degree one: F(U) = A(U)·U.
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 50; trial++ {
		u := randPrim(rng).Cons()
		for _, ax := range []Axis{X, Y, Z} {
			a := Jacobian(ax, u)
			au := linalg.MulVec5(&a, &u)
			f := Flux(ax, u)
			for c := 0; c < NC; c++ {
				if math.Abs(au[c]-f[c]) > 1e-10*math.Max(1, math.Abs(f[c])) {
					t.Fatalf("axis %v comp %d: A·U = %g, F = %g", ax, c, au[c], f[c])
				}
			}
		}
	}
}

func TestEigensystemInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		u := randPrim(rng).Cons()
		for _, ax := range []Axis{X, Y, Z} {
			e := Eigensystem(ax, u)
			prod := linalg.Mul5(&e.T, &e.Tinv)
			id := linalg.Identity5()
			for i := range prod {
				if math.Abs(prod[i]-id[i]) > 1e-10 {
					t.Fatalf("axis %v: T·Tinv deviates at %d: %g", ax, i, prod[i]-id[i])
				}
			}
		}
	}
}

func TestEigensystemDiagonalizesJacobian(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 50; trial++ {
		u := randPrim(rng).Cons()
		for _, ax := range []Axis{X, Y, Z} {
			e := Eigensystem(ax, u)
			// T · diag(Λ) · Tinv must equal the Jacobian.
			var tl linalg.Mat5
			for i := 0; i < NC; i++ {
				for j := 0; j < NC; j++ {
					tl[i*5+j] = e.T[i*5+j] * e.Lambda[j]
				}
			}
			rec := linalg.Mul5(&tl, &e.Tinv)
			jac := Jacobian(ax, u)
			for i := range rec {
				scale := math.Max(1, math.Abs(jac[i]))
				if math.Abs(rec[i]-jac[i]) > 1e-9*scale {
					t.Fatalf("axis %v entry %d: TΛT⁻¹ = %g, A = %g", ax, i, rec[i], jac[i])
				}
			}
		}
	}
}

func TestEigenvalues(t *testing.T) {
	p := Prim{Rho: 1, U: 0.5, V: -0.25, W: 0.125, P: 1}
	u := p.Cons()
	a := p.SoundSpeed()
	for _, ax := range []Axis{X, Y, Z} {
		e := Eigensystem(ax, u)
		vel := p.Velocity(ax)
		want := [5]float64{vel, vel, vel, vel + a, vel - a}
		for i := range want {
			if math.Abs(e.Lambda[i]-want[i]) > 1e-13 {
				t.Errorf("axis %v λ%d = %g, want %g", ax, i, e.Lambda[i], want[i])
			}
		}
	}
}

func TestSpectralRadius(t *testing.T) {
	p := Prim{Rho: 1, U: -3, V: 0, W: 0, P: 1}
	got := SpectralRadius(X, p.Cons())
	want := 3 + p.SoundSpeed()
	if math.Abs(got-want) > 1e-13 {
		t.Errorf("SpectralRadius = %g, want %g", got, want)
	}
	// Spectral radius bounds every eigenvalue magnitude.
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 30; trial++ {
		u := randPrim(rng).Cons()
		for _, ax := range []Axis{X, Y, Z} {
			sr := SpectralRadius(ax, u)
			e := Eigensystem(ax, u)
			for _, l := range e.Lambda {
				if math.Abs(l) > sr+1e-12 {
					t.Fatalf("axis %v: |λ| = %g exceeds spectral radius %g", ax, math.Abs(l), sr)
				}
			}
		}
	}
}

func TestAxisStringAndUnit(t *testing.T) {
	if X.String() != "x" || Y.String() != "y" || Z.String() != "z" {
		t.Error("Axis.String wrong")
	}
	if Axis(9).String() != "Axis(9)" {
		t.Error("unknown axis string wrong")
	}
	kx, ky, kz := Y.Unit()
	if kx != 0 || ky != 1 || kz != 0 {
		t.Error("Y.Unit wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad axis Unit should panic")
		}
	}()
	Axis(9).Unit()
}

// randUnit returns a random unit direction.
func randUnit(rng *rand.Rand) (kx, ky, kz float64) {
	for {
		x, y, z := rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1
		n := math.Sqrt(x*x + y*y + z*z)
		if n > 0.1 {
			return x / n, y / n, z / n
		}
	}
}

func TestFluxDirLinearInDirection(t *testing.T) {
	// FluxDir(k) = kx·F + ky·G + kz·H.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		u := randPrim(rng).Cons()
		kx, ky, kz := rng.Float64()*4-2, rng.Float64()*4-2, rng.Float64()*4-2
		f := Flux(X, u)
		g := Flux(Y, u)
		h := Flux(Z, u)
		fd := FluxDir(kx, ky, kz, u)
		for c := 0; c < NC; c++ {
			want := kx*f[c] + ky*g[c] + kz*h[c]
			if math.Abs(fd[c]-want) > 1e-12*math.Max(1, math.Abs(want)) {
				t.Fatalf("comp %d: FluxDir %g != linear combination %g", c, fd[c], want)
			}
		}
	}
}

func TestEigensystemDirGeneralDirections(t *testing.T) {
	// For random unit directions the transforms must still invert and
	// diagonalize the directional Jacobian.
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		u := randPrim(rng).Cons()
		kx, ky, kz := randUnit(rng)
		e := EigensystemDir(kx, ky, kz, u)
		prod := linalg.Mul5(&e.T, &e.Tinv)
		id := linalg.Identity5()
		for i := range prod {
			if math.Abs(prod[i]-id[i]) > 1e-9 {
				t.Fatalf("dir (%g,%g,%g): T·Tinv off by %g", kx, ky, kz, prod[i]-id[i])
			}
		}
		var tl linalg.Mat5
		for i := 0; i < NC; i++ {
			for j := 0; j < NC; j++ {
				tl[i*5+j] = e.T[i*5+j] * e.Lambda[j]
			}
		}
		rec := linalg.Mul5(&tl, &e.Tinv)
		jac := JacobianDir(kx, ky, kz, u)
		for i := range rec {
			scale := math.Max(1, math.Abs(jac[i]))
			if math.Abs(rec[i]-jac[i]) > 1e-8*scale {
				t.Fatalf("dir (%g,%g,%g) entry %d: TΛT⁻¹ %g vs A %g", kx, ky, kz, i, rec[i], jac[i])
			}
		}
	}
}

func TestEigensystemDirRequiresUnitDirection(t *testing.T) {
	u := Prim{Rho: 1, P: 1}.Cons()
	defer func() {
		if recover() == nil {
			t.Error("non-unit direction should panic")
		}
	}()
	EigensystemDir(2, 0, 0, u)
}

func TestSpectralRadiusDir(t *testing.T) {
	p := Prim{Rho: 1, U: 1, V: 2, W: -2, P: 1}
	u := p.Cons()
	// Unit x direction matches the axis version.
	if got, want := SpectralRadiusDir(1, 0, 0, u), SpectralRadius(X, u); math.Abs(got-want) > 1e-14 {
		t.Errorf("SpectralRadiusDir x = %g, want %g", got, want)
	}
	// Scaling the direction scales the whole radius when θ and a|k|
	// scale together.
	d1 := SpectralRadiusDir(1, 2, -2, u)
	d2 := SpectralRadiusDir(2, 4, -4, u)
	if math.Abs(d2-2*d1) > 1e-12 {
		t.Errorf("SpectralRadiusDir not homogeneous: %g vs %g", d2, 2*d1)
	}
}
