package euler

import (
	"context"
	"testing"
	"time"

	"repro/internal/sched"
)

func runSweep(t *testing.T, procs, points, sweeps int) float64 {
	t.Helper()
	s := sched.New(sched.Config{Procs: procs, QueueDepth: 4, Grow: true})
	defer s.Close()
	j := NewSweepJob("sweep", points, sweeps)
	h, err := s.Submit(j)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if st := h.Status(); st.State != sched.StateDone {
		t.Fatalf("state %v, want done", st.State)
	}
	return j.Checksum()
}

// TestSweepJobChecksumTeamSizeInvariant: the sweep's checksum is a
// serial fold over a point-indexed array, so any processor grant —
// and any resize history — produces the bitwise-identical result.
func TestSweepJobChecksumTeamSizeInvariant(t *testing.T) {
	const points, sweeps = 257, 3
	ref := runSweep(t, 1, points, sweeps)
	for _, procs := range []int{2, 4, 7} {
		if got := runSweep(t, procs, points, sweeps); got != ref {
			t.Errorf("procs=%d: checksum %.17g != serial %.17g", procs, got, ref)
		}
	}
}

func TestSweepJobParallelism(t *testing.T) {
	j := NewSweepJob("s", 42, 1)
	if got := j.Parallelism(); got != 42 {
		t.Errorf("Parallelism = %d, want 42", got)
	}
}

func TestNewSweepJobPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSweepJob(0 points) should panic")
		}
	}()
	NewSweepJob("bad", 0, 1)
}
