package euler

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/sched"
)

// SweepJob is a schedulable characteristic-analysis sweep: a batch of
// varied flow states swept repeatedly, each sweep rebuilding every
// point's directional eigensystem, flux and spectral radius on the
// granted team. It is the euler-level analogue of one solver sweep —
// pure per-point work with one fork-join region per sweep — and its
// checksum is a serial fold over a point-indexed array, so the result
// is bit-identical for every team size and across mid-run grant
// resizes.
type SweepJob struct {
	name   string
	points int
	sweeps int
	hook   func(sweep int) error

	out []float64
	sum float64
}

// NewSweepJob builds a sweep job over the given number of points and
// sweeps. The point count is the job's loop-level parallelism.
func NewSweepJob(name string, points, sweeps int) *SweepJob {
	if points < 1 || sweeps < 1 {
		panic(fmt.Sprintf("euler: NewSweepJob needs points, sweeps >= 1, got %d, %d", points, sweeps))
	}
	return &SweepJob{name: name, points: points, sweeps: sweeps}
}

// WithStepHook installs a callback invoked after each sweep's
// checkpoint, before the sweep's parallel region. A non-nil return
// aborts the run with that error. Fault-injection harnesses use this
// to fail, hang or stall a real sweep job at a chosen sweep; it must
// not be called once the job is submitted.
func (j *SweepJob) WithStepHook(hook func(sweep int) error) *SweepJob {
	j.hook = hook
	return j
}

// Name implements sched.Job.
func (j *SweepJob) Name() string { return j.name }

// Parallelism implements sched.Job.
func (j *SweepJob) Parallelism() int { return j.points }

// state returns the i-th point's conserved state: a smooth, strictly
// physical variation around a subsonic reference.
func (j *SweepJob) state(i int) linalg.Vec5 {
	t := float64(i) / float64(j.points)
	p := Prim{
		Rho: 1 + 0.3*math.Sin(7*t),
		U:   0.4 + 0.2*math.Cos(3*t),
		V:   0.1 * math.Sin(5*t),
		W:   0.05 * math.Cos(11*t),
		P:   1 + 0.25*math.Sin(2*t),
	}
	return p.Cons()
}

// Run implements sched.Job.
func (j *SweepJob) Run(g *sched.Grant) error {
	n := j.points
	j.out = make([]float64, n)
	// Unit sweep direction with all three metric components live.
	kx, ky, kz := 1/math.Sqrt(3), 1/math.Sqrt(3), 1/math.Sqrt(3)
	for s := 0; s < j.sweeps; s++ {
		if err := g.Checkpoint(); err != nil {
			return err
		}
		if j.hook != nil {
			if err := j.hook(s); err != nil {
				return err
			}
		}
		phase := float64(s + 1)
		g.Team().ForChunked(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				u := j.state(i)
				e := EigensystemDir(kx, ky, kz, u)
				f := FluxDir(kx, ky, kz, u)
				sr := SpectralRadiusDir(kx, ky, kz, u)
				v := sr
				for c := 0; c < NC; c++ {
					v += e.Lambda[c] + f[c]
				}
				// Feed the previous sweep's value back in so every sweep
				// matters to the final checksum.
				j.out[i] = v*phase + j.out[i]/phase
			}
		})
		// Serial, order-fixed fold: deterministic for any team size.
		sum := 0.0
		for _, v := range j.out {
			sum += v
		}
		j.sum = sum
	}
	return nil
}

// Checksum returns the final sweep's checksum. Valid after Run
// returns nil; it depends only on (points, sweeps), never on the team
// size or resize history.
func (j *SweepJob) Checksum() float64 { return j.sum }
