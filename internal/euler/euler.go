// Package euler implements the 3-D compressible Euler equations in
// conservative form: state conversions, fluxes, flux Jacobians and the
// Pulliam–Chaussee eigensystem (similarity transforms that diagonalize
// the flux Jacobians) used by the diagonalized approximate-factorization
// implicit scheme of the F3D reproduction.
//
// The conserved vector is U = (ρ, ρu, ρv, ρw, e) with total energy per
// unit volume e = p/(γ−1) + ρ(u²+v²+w²)/2 and γ = 1.4.
package euler

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Gamma is the ratio of specific heats for air.
const Gamma = 1.4

// NC is the number of conserved variables.
const NC = 5

// Axis identifies a coordinate direction.
type Axis int

const (
	X Axis = iota
	Y
	Z
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	switch a {
	case X:
		return "x"
	case Y:
		return "y"
	case Z:
		return "z"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// Unit returns the unit vector along the axis.
func (a Axis) Unit() (kx, ky, kz float64) {
	switch a {
	case X:
		return 1, 0, 0
	case Y:
		return 0, 1, 0
	case Z:
		return 0, 0, 1
	default:
		panic(fmt.Sprintf("euler: bad axis %d", int(a)))
	}
}

// Prim is the primitive state (density, velocity, pressure).
type Prim struct {
	Rho, U, V, W, P float64
}

// Cons returns the conserved vector for the primitive state.
func (p Prim) Cons() linalg.Vec5 {
	e := p.P/(Gamma-1) + 0.5*p.Rho*(p.U*p.U+p.V*p.V+p.W*p.W)
	return linalg.Vec5{p.Rho, p.Rho * p.U, p.Rho * p.V, p.Rho * p.W, e}
}

// PrimFromCons converts a conserved vector to primitive variables.
// It panics if density is not positive (an invalid state is a solver
// bug, not a recoverable condition).
func PrimFromCons(u linalg.Vec5) Prim {
	if u[0] <= 0 || math.IsNaN(u[0]) {
		panic(fmt.Sprintf("euler: non-positive density %g", u[0]))
	}
	inv := 1 / u[0]
	p := Prim{
		Rho: u[0],
		U:   u[1] * inv,
		V:   u[2] * inv,
		W:   u[3] * inv,
	}
	p.P = (Gamma - 1) * (u[4] - 0.5*p.Rho*(p.U*p.U+p.V*p.V+p.W*p.W))
	return p
}

// SoundSpeed returns a = sqrt(γ p / ρ). It panics on a non-physical
// (non-positive pressure or density) state.
func (p Prim) SoundSpeed() float64 {
	if p.P <= 0 || p.Rho <= 0 {
		panic(fmt.Sprintf("euler: non-physical state rho=%g p=%g", p.Rho, p.P))
	}
	return math.Sqrt(Gamma * p.P / p.Rho)
}

// Velocity returns the velocity component along the axis.
func (p Prim) Velocity(a Axis) float64 {
	switch a {
	case X:
		return p.U
	case Y:
		return p.V
	case Z:
		return p.W
	default:
		panic(fmt.Sprintf("euler: bad axis %d", int(a)))
	}
}

// Flux returns the inviscid flux vector along the axis for conserved
// state u.
func Flux(a Axis, u linalg.Vec5) linalg.Vec5 {
	kx, ky, kz := a.Unit()
	return FluxDir(kx, ky, kz, u)
}

// FluxDir returns the directional inviscid flux kx·F + ky·G + kz·H for
// conserved state u — the flux through a face with (not necessarily
// unit) normal (kx, ky, kz), as appears in generalized-coordinate
// formulations.
func FluxDir(kx, ky, kz float64, u linalg.Vec5) linalg.Vec5 {
	return FluxDirPrim(kx, ky, kz, u, PrimFromCons(u))
}

// FluxDirPrim is FluxDir for a state whose primitive decomposition has
// already been computed: p must equal PrimFromCons(u). Line kernels
// that need both the flux and the spectral radius at a point convert
// once and share p; the expressions are exactly FluxDir's, so results
// are bitwise identical.
func FluxDirPrim(kx, ky, kz float64, u linalg.Vec5, p Prim) linalg.Vec5 {
	theta := kx*p.U + ky*p.V + kz*p.W
	return linalg.Vec5{
		u[0] * theta,
		u[1]*theta + kx*p.P,
		u[2]*theta + ky*p.P,
		u[3]*theta + kz*p.P,
		(u[4] + p.P) * theta,
	}
}

// SpectralRadius returns |velocity| + a along the axis: the largest
// characteristic speed, used for time-step selection and scalar
// dissipation scaling.
func SpectralRadius(a Axis, u linalg.Vec5) float64 {
	return SpectralRadiusPrim(a, PrimFromCons(u))
}

// SpectralRadiusPrim is SpectralRadius on an already-computed primitive
// state — the companion of FluxDirPrim for kernels sharing one
// conversion per point.
func SpectralRadiusPrim(a Axis, p Prim) float64 {
	return math.Abs(p.Velocity(a)) + p.SoundSpeed()
}

// SpectralRadiusDir returns |k·velocity| + a·|k| for a general (not
// necessarily unit) direction.
func SpectralRadiusDir(kx, ky, kz float64, u linalg.Vec5) float64 {
	p := PrimFromCons(u)
	theta := kx*p.U + ky*p.V + kz*p.W
	norm := math.Sqrt(kx*kx + ky*ky + kz*kz)
	return math.Abs(theta) + norm*p.SoundSpeed()
}

// Jacobian returns the analytic flux Jacobian A = ∂F/∂U along the axis
// for conserved state uc. Derivation (θ = k·velocity, γ₁ = γ−1,
// φ² = γ₁(u²+v²+w²)/2, H = (e+p)/ρ):
//
//	row 0: [0, kx, ky, kz, 0]
//	row i: [kᵢφ² − uᵢθ,  δᵢⱼθ + uᵢkⱼ − γ₁kᵢuⱼ, …,  γ₁kᵢ]
//	row 4: [θ(φ² − H),  Hkⱼ − γ₁uⱼθ, …,  γθ]
func Jacobian(a Axis, uc linalg.Vec5) linalg.Mat5 {
	kx, ky, kz := a.Unit()
	return JacobianDir(kx, ky, kz, uc)
}

// JacobianDir returns the directional flux Jacobian ∂(FluxDir)/∂U for a
// general direction (kx, ky, kz).
func JacobianDir(kx, ky, kz float64, uc linalg.Vec5) linalg.Mat5 {
	p := PrimFromCons(uc)
	u, v, w := p.U, p.V, p.W
	k := [3]float64{kx, ky, kz}
	vel := [3]float64{u, v, w}
	theta := kx*u + ky*v + kz*w
	g1 := Gamma - 1
	phi2 := 0.5 * g1 * (u*u + v*v + w*w)
	h := (uc[4] + p.P) / p.Rho

	var m linalg.Mat5
	m[0*5+1], m[0*5+2], m[0*5+3] = kx, ky, kz
	for i := 0; i < 3; i++ {
		r := (i + 1) * 5
		m[r+0] = k[i]*phi2 - vel[i]*theta
		for j := 0; j < 3; j++ {
			m[r+1+j] = vel[i]*k[j] - g1*k[i]*vel[j]
			if i == j {
				m[r+1+j] += theta
			}
		}
		m[r+4] = g1 * k[i]
	}
	m[4*5+0] = theta * (phi2 - h)
	for j := 0; j < 3; j++ {
		m[4*5+1+j] = h*k[j] - g1*vel[j]*theta
	}
	m[4*5+4] = Gamma * theta
	return m
}

// Eigen holds the similarity transform that diagonalizes a flux
// Jacobian: A = T · diag(Λ) · Tinv, with Λ = (θ, θ, θ, θ+a, θ−a).
type Eigen struct {
	Lambda linalg.Vec5
	T      linalg.Mat5
	Tinv   linalg.Mat5
}

// Eigensystem returns the Pulliam–Chaussee eigensystem of the flux
// Jacobian along the axis at conserved state uc. The transforms are
// analytic; package tests verify T·Tinv = I and T·Λ·Tinv = Jacobian to
// rounding.
func Eigensystem(a Axis, uc linalg.Vec5) Eigen {
	kx, ky, kz := a.Unit()
	return EigensystemDir(kx, ky, kz, uc)
}

// EigensystemInto computes Eigensystem directly into e. The Eigen
// struct is 55 floats; sweep kernels that fill a line of eigensystems
// use this to write each one in place instead of copying the by-value
// return. Every field of e is overwritten.
func EigensystemInto(e *Eigen, a Axis, uc linalg.Vec5) {
	kx, ky, kz := a.Unit()
	EigensystemDirInto(e, kx, ky, kz, uc)
}

// EigensystemDir returns the Pulliam–Chaussee eigensystem for a general
// unit direction (kx, ky, kz): the similarity transform that
// diagonalizes JacobianDir for that direction. The direction must have
// unit length (the transforms assume k·k = 1); normalize metrics before
// calling.
func EigensystemDir(kx, ky, kz float64, uc linalg.Vec5) Eigen {
	var e Eigen
	EigensystemDirInto(&e, kx, ky, kz, uc)
	return e
}

// EigensystemDirInto is EigensystemDir computed directly into e; every
// entry of Lambda, T and Tinv is written, so e may hold stale data.
func EigensystemDirInto(e *Eigen, kx, ky, kz float64, uc linalg.Vec5) {
	if d := kx*kx + ky*ky + kz*kz; math.Abs(d-1) > 1e-9 {
		panic(fmt.Sprintf("euler: EigensystemDir needs a unit direction, |k|² = %g", d))
	}
	p := PrimFromCons(uc)
	u, v, w := p.U, p.V, p.W
	snd := p.SoundSpeed()
	rho := p.Rho
	theta := kx*u + ky*v + kz*w
	g1 := Gamma - 1
	phi2 := 0.5 * g1 * (u*u + v*v + w*w)
	alpha := rho / (math.Sqrt2 * snd)
	beta := 1 / (math.Sqrt2 * rho * snd)
	a2 := snd * snd

	e.Lambda = linalg.Vec5{theta, theta, theta, theta + snd, theta - snd}

	set := func(m *linalg.Mat5, r, c int, v float64) { m[r*5+c] = v }

	// Right eigenvectors (columns of T).
	T := &e.T
	// Column 0 (convective, k̃x family).
	set(T, 0, 0, kx)
	set(T, 1, 0, kx*u)
	set(T, 2, 0, kx*v+kz*rho)
	set(T, 3, 0, kx*w-ky*rho)
	set(T, 4, 0, kx*phi2/g1+rho*(kz*v-ky*w))
	// Column 1 (convective, k̃y family).
	set(T, 0, 1, ky)
	set(T, 1, 1, ky*u-kz*rho)
	set(T, 2, 1, ky*v)
	set(T, 3, 1, ky*w+kx*rho)
	set(T, 4, 1, ky*phi2/g1+rho*(kx*w-kz*u))
	// Column 2 (convective, k̃z family).
	set(T, 0, 2, kz)
	set(T, 1, 2, kz*u+ky*rho)
	set(T, 2, 2, kz*v-kx*rho)
	set(T, 3, 2, kz*w)
	set(T, 4, 2, kz*phi2/g1+rho*(ky*u-kx*v))
	// Column 3 (acoustic, θ+a).
	set(T, 0, 3, alpha)
	set(T, 1, 3, alpha*(u+kx*snd))
	set(T, 2, 3, alpha*(v+ky*snd))
	set(T, 3, 3, alpha*(w+kz*snd))
	set(T, 4, 3, alpha*((phi2+a2)/g1+theta*snd))
	// Column 4 (acoustic, θ−a).
	set(T, 0, 4, alpha)
	set(T, 1, 4, alpha*(u-kx*snd))
	set(T, 2, 4, alpha*(v-ky*snd))
	set(T, 3, 4, alpha*(w-kz*snd))
	set(T, 4, 4, alpha*((phi2+a2)/g1-theta*snd))

	// Left eigenvectors (rows of Tinv).
	Ti := &e.Tinv
	// Row 0.
	set(Ti, 0, 0, kx*(1-phi2/a2)-(kz*v-ky*w)/rho)
	set(Ti, 0, 1, kx*g1*u/a2)
	set(Ti, 0, 2, kx*g1*v/a2+kz/rho)
	set(Ti, 0, 3, kx*g1*w/a2-ky/rho)
	set(Ti, 0, 4, -kx*g1/a2)
	// Row 1.
	set(Ti, 1, 0, ky*(1-phi2/a2)-(kx*w-kz*u)/rho)
	set(Ti, 1, 1, ky*g1*u/a2-kz/rho)
	set(Ti, 1, 2, ky*g1*v/a2)
	set(Ti, 1, 3, ky*g1*w/a2+kx/rho)
	set(Ti, 1, 4, -ky*g1/a2)
	// Row 2.
	set(Ti, 2, 0, kz*(1-phi2/a2)-(ky*u-kx*v)/rho)
	set(Ti, 2, 1, kz*g1*u/a2+ky/rho)
	set(Ti, 2, 2, kz*g1*v/a2-kx/rho)
	set(Ti, 2, 3, kz*g1*w/a2)
	set(Ti, 2, 4, -kz*g1/a2)
	// Row 3 (acoustic, θ+a).
	set(Ti, 3, 0, beta*(phi2-theta*snd))
	set(Ti, 3, 1, beta*(kx*snd-g1*u))
	set(Ti, 3, 2, beta*(ky*snd-g1*v))
	set(Ti, 3, 3, beta*(kz*snd-g1*w))
	set(Ti, 3, 4, beta*g1)
	// Row 4 (acoustic, θ−a).
	set(Ti, 4, 0, beta*(phi2+theta*snd))
	set(Ti, 4, 1, -beta*(kx*snd+g1*u))
	set(Ti, 4, 2, -beta*(ky*snd+g1*v))
	set(Ti, 4, 3, -beta*(kz*snd+g1*w))
	set(Ti, 4, 4, beta*g1)
}
