package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// diagDominant builds a random diagonally dominant tridiagonal system of
// order n from the given rng, returning bands and a known solution x
// with rhs d = T x.
func diagDominant(rng *rand.Rand, n int) (a, b, c, x, d []float64) {
	a = make([]float64, n)
	b = make([]float64, n)
	c = make([]float64, n)
	x = make([]float64, n)
	d = make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Float64()*2 - 1
		c[i] = rng.Float64()*2 - 1
		b[i] = 2.5 + rng.Float64() // |b| > |a|+|c|
		x[i] = rng.Float64()*10 - 5
	}
	MulTridiag(a, b, c, x, d)
	return
}

func maxAbsDiff(x, y []float64) float64 {
	m := 0.0
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}

func TestSolveTridiagAgainstKnownSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 17, 100, 1000} {
		a, b, c, x, d := diagDominant(rng, n)
		SolveTridiag(a, b, c, d)
		if err := maxAbsDiff(d, x); err > 1e-10 {
			t.Errorf("n=%d: max error %g", n, err)
		}
	}
}

func TestSolveTridiagProperty(t *testing.T) {
	f := func(seed int64, nu uint8) bool {
		n := int(nu%100) + 1
		rng := rand.New(rand.NewSource(seed))
		a, b, c, x, d := diagDominant(rng, n)
		SolveTridiag(a, b, c, d)
		return maxAbsDiff(d, x) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveTridiagEmptyAndMismatch(t *testing.T) {
	SolveTridiag(nil, nil, nil, nil) // no-op
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	SolveTridiag(make([]float64, 3), make([]float64, 3), make([]float64, 3), make([]float64, 4))
}

func TestSolveTridiagConst(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(2))
	const av, bv, cv = -1.0, 4.0, -1.5
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	x := make([]float64, n)
	d := make([]float64, n)
	for i := range x {
		a[i], b[i], c[i] = av, bv, cv
		x[i] = rng.Float64()
	}
	MulTridiag(a, b, c, x, d)
	w := make([]float64, n)
	SolveTridiagConst(av, bv, cv, d, w)
	if err := maxAbsDiff(d, x); err > 1e-11 {
		t.Errorf("const solve max error %g", err)
	}
	SolveTridiagConst(av, bv, cv, nil, nil) // empty ok
	defer func() {
		if recover() == nil {
			t.Error("short scratch should panic")
		}
	}()
	SolveTridiagConst(av, bv, cv, d, w[:n-1])
}

func TestSolveTridiagPlanarMatchesScalar(t *testing.T) {
	// The planar (vector-style) solver must produce exactly the same
	// answers as solving each system with the scalar Thomas algorithm —
	// the two code variants implement the same arithmetic.
	rng := rand.New(rand.NewSource(3))
	const n, nsys = 40, 13
	a := make([]float64, n*nsys)
	b := make([]float64, n*nsys)
	c := make([]float64, n*nsys)
	d := make([]float64, n*nsys)
	// Per-system copies for the scalar reference.
	as := make([][]float64, nsys)
	bs := make([][]float64, nsys)
	cs := make([][]float64, nsys)
	ds := make([][]float64, nsys)
	for s := 0; s < nsys; s++ {
		as[s] = make([]float64, n)
		bs[s] = make([]float64, n)
		cs[s] = make([]float64, n)
		ds[s] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for s := 0; s < nsys; s++ {
			av := rng.Float64() - 0.5
			cv := rng.Float64() - 0.5
			bv := 2 + rng.Float64()
			dv := rng.Float64() * 4
			a[i*nsys+s], b[i*nsys+s], c[i*nsys+s], d[i*nsys+s] = av, bv, cv, dv
			as[s][i], bs[s][i], cs[s][i], ds[s][i] = av, bv, cv, dv
		}
	}
	SolveTridiagPlanar(a, b, c, d, n, nsys)
	for s := 0; s < nsys; s++ {
		SolveTridiag(as[s], bs[s], cs[s], ds[s])
		for i := 0; i < n; i++ {
			if got, want := d[i*nsys+s], ds[s][i]; got != want {
				t.Fatalf("system %d row %d: planar %g != scalar %g", s, i, got, want)
			}
		}
	}
}

func TestSolveTridiagPlanarPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0": func() { SolveTridiagPlanar(nil, nil, nil, nil, 0, 1) },
		"short": func() {
			SolveTridiagPlanar(make([]float64, 5), make([]float64, 5), make([]float64, 5), make([]float64, 5), 3, 2)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSolvePentadiag(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 4, 5, 10, 100} {
		e := make([]float64, n)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		f := make([]float64, n)
		x := make([]float64, n)
		d := make([]float64, n)
		for i := 0; i < n; i++ {
			e[i] = rng.Float64()*0.5 - 0.25
			a[i] = rng.Float64() - 0.5
			c[i] = rng.Float64() - 0.5
			f[i] = rng.Float64()*0.5 - 0.25
			b[i] = 3 + rng.Float64()
			x[i] = rng.Float64()*10 - 5
		}
		MulPentadiag(e, a, b, c, f, x, d)
		SolvePentadiag(e, a, b, c, f, d)
		if err := maxAbsDiff(d, x); err > 1e-9 {
			t.Errorf("n=%d: pentadiagonal max error %g", n, err)
		}
	}
	SolvePentadiag(nil, nil, nil, nil, nil, nil) // empty ok
}

func TestSolvePentadiagReducesToTridiag(t *testing.T) {
	// With zero outer bands the pentadiagonal solver must agree exactly
	// in structure (to rounding) with the tridiagonal solver.
	rng := rand.New(rand.NewSource(5))
	const n = 37
	a, b, c, x, d := diagDominant(rng, n)
	e := make([]float64, n)
	f := make([]float64, n)
	d2 := append([]float64(nil), d...)
	a2 := append([]float64(nil), a...)
	b2 := append([]float64(nil), b...)
	c2 := append([]float64(nil), c...)
	SolveTridiag(a, b, c, d)
	SolvePentadiag(e, a2, b2, c2, f, d2)
	if err := maxAbsDiff(d, d2); err > 1e-12 {
		t.Errorf("penta vs tri max diff %g", err)
	}
	_ = x
}

func TestMulTridiagMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MulTridiag(make([]float64, 2), make([]float64, 3), make([]float64, 3), make([]float64, 3), make([]float64, 3))
}

func TestSolveTridiagPeriodic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{3, 4, 7, 32, 257} {
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		x := make([]float64, n)
		d := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Float64() - 0.5
			c[i] = rng.Float64() - 0.5
			b[i] = 3 + rng.Float64()
			x[i] = rng.Float64()*10 - 5
		}
		MulTridiagPeriodic(a, b, c, x, d)
		SolveTridiagPeriodic(a, b, c, d)
		if err := maxAbsDiff(d, x); err > 1e-9 {
			t.Errorf("n=%d: periodic solve max error %g", n, err)
		}
	}
}

func TestSolveTridiagPeriodicReducesToOrdinary(t *testing.T) {
	// With zero corner couplings the periodic solver must agree with the
	// ordinary Thomas solve.
	rng := rand.New(rand.NewSource(7))
	const n = 41
	a, b, c, _, d := diagDominant(rng, n)
	a[0], c[n-1] = 0, 0
	d2 := append([]float64(nil), d...)
	a2 := append([]float64(nil), a...)
	b2 := append([]float64(nil), b...)
	c2 := append([]float64(nil), c...)
	SolveTridiag(a, b, c, d)
	SolveTridiagPeriodic(a2, b2, c2, d2)
	if err := maxAbsDiff(d, d2); err > 1e-10 {
		t.Errorf("periodic vs ordinary max diff %g", err)
	}
}

func TestSolveTridiagPeriodicPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"short": func() {
			SolveTridiagPeriodic(make([]float64, 2), make([]float64, 2), make([]float64, 2), make([]float64, 2))
		},
		"mismatch": func() {
			SolveTridiagPeriodic(make([]float64, 3), make([]float64, 3), make([]float64, 3), make([]float64, 4))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
