// Package linalg provides the small dense and banded kernels the F3D
// reproduction is built on: scalar and block (5×5) tridiagonal solvers,
// a pentadiagonal solver for implicit higher-order dissipation, and the
// batched "planar" variants that mirror how the original vector code
// solved one whole plane of independent systems at a time.
//
// All solvers are allocation-free given caller-provided workspace so
// they can run inside tight parallel loops.
package linalg

import "fmt"

// SolveTridiag solves the tridiagonal system with sub-diagonal a,
// diagonal b, super-diagonal c and right-hand side d, in place: on
// return d holds the solution. a[0] and c[n-1] are ignored. b and c are
// overwritten. The Thomas algorithm requires the system to be
// nonsingular without pivoting (diagonally dominant systems, as produced
// by the implicit time step, always qualify).
func SolveTridiag(a, b, c, d []float64) {
	n := len(d)
	if len(a) != n || len(b) != n || len(c) != n {
		panic(fmt.Sprintf("linalg: SolveTridiag length mismatch: a=%d b=%d c=%d d=%d",
			len(a), len(b), len(c), len(d)))
	}
	if n == 0 {
		return
	}
	// Forward elimination.
	inv := 1 / b[0]
	c[0] *= inv
	d[0] *= inv
	for i := 1; i < n; i++ {
		inv = 1 / (b[i] - a[i]*c[i-1])
		c[i] *= inv
		d[i] = (d[i] - a[i]*d[i-1]) * inv
	}
	// Back substitution.
	for i := n - 2; i >= 0; i-- {
		d[i] -= c[i] * d[i+1]
	}
}

// SolveTridiagConst solves a tridiagonal system whose sub-, main and
// super-diagonal are the constants a, b, c at every row (the common
// case for constant-coefficient implicit operators), with right-hand
// side d solved in place. w is scratch of len >= len(d).
func SolveTridiagConst(a, b, c float64, d, w []float64) {
	n := len(d)
	if len(w) < n {
		panic(fmt.Sprintf("linalg: SolveTridiagConst scratch too small: %d < %d", len(w), n))
	}
	if n == 0 {
		return
	}
	inv := 1 / b
	w[0] = c * inv
	d[0] *= inv
	for i := 1; i < n; i++ {
		inv = 1 / (b - a*w[i-1])
		w[i] = c * inv
		d[i] = (d[i] - a*d[i-1]) * inv
	}
	for i := n - 2; i >= 0; i-- {
		d[i] -= w[i] * d[i+1]
	}
}

// SolveTridiagPlanar solves nsys independent tridiagonal systems of
// order n simultaneously, in the memory layout the original *vector*
// F3D used: coefficient and RHS arrays are [n][nsys] planes (row i holds
// element i of every system, systems contiguous). The inner loop runs
// over systems — unit stride, perfectly vectorizable, and exactly the
// reason the vector code needed plane-sized scratch arrays (paper §4,
// concept 4). d is solved in place; b and c are overwritten.
func SolveTridiagPlanar(a, b, c, d []float64, n, nsys int) {
	if n < 1 || nsys < 1 {
		panic(fmt.Sprintf("linalg: SolveTridiagPlanar needs n, nsys >= 1, got %d, %d", n, nsys))
	}
	// Validate with an overflow-safe product, before any element is
	// written: an overflowed n*nsys used to pass the length check and
	// panic mid-elimination, after rows had already been scaled.
	if nsys > (int(^uint(0)>>1))/n {
		panic(fmt.Sprintf("linalg: SolveTridiagPlanar n*nsys overflows: %d * %d", n, nsys))
	}
	need := n * nsys
	if len(a) < need || len(b) < need || len(c) < need || len(d) < need {
		panic(fmt.Sprintf("linalg: SolveTridiagPlanar arrays shorter than n*nsys: a=%d b=%d c=%d d=%d, need %d",
			len(a), len(b), len(c), len(d), need))
	}
	// Forward elimination: row 0.
	for s := 0; s < nsys; s++ {
		inv := 1 / b[s]
		c[s] *= inv
		d[s] *= inv
	}
	for i := 1; i < n; i++ {
		row, prev := i*nsys, (i-1)*nsys
		for s := 0; s < nsys; s++ {
			inv := 1 / (b[row+s] - a[row+s]*c[prev+s])
			c[row+s] *= inv
			d[row+s] = (d[row+s] - a[row+s]*d[prev+s]) * inv
		}
	}
	for i := n - 2; i >= 0; i-- {
		row, next := i*nsys, (i+1)*nsys
		for s := 0; s < nsys; s++ {
			d[row+s] -= c[row+s] * d[next+s]
		}
	}
}

// SolvePentadiag solves the pentadiagonal system with bands
// (e, a, b, c, f) — e the second sub-diagonal, a the first sub-diagonal,
// b the main diagonal, c the first super-diagonal, f the second
// super-diagonal — and right-hand side d, in place. All bands are
// overwritten. Out-of-range band entries (e[0], e[1], a[0], c[n-1],
// f[n-1], f[n-2]) are ignored. Implicit fourth-order dissipation in the
// diagonalized scheme produces systems of this form.
func SolvePentadiag(e, a, b, c, f, d []float64) {
	n := len(d)
	if len(e) != n || len(a) != n || len(b) != n || len(c) != n || len(f) != n {
		panic("linalg: SolvePentadiag length mismatch")
	}
	if n == 0 {
		return
	}
	if n == 1 {
		d[0] /= b[0]
		return
	}
	// Gaussian elimination without pivoting, preserving the two
	// super-diagonals.
	// Row 0 normalization.
	inv := 1 / b[0]
	c[0] *= inv
	f[0] *= inv
	d[0] *= inv
	// Row 1: eliminate a[1].
	m := a[1]
	b1 := b[1] - m*c[0]
	inv = 1 / b1
	c[1] = (c[1] - m*f[0]) * inv
	f[1] *= inv
	d[1] = (d[1] - m*d[0]) * inv
	for i := 2; i < n; i++ {
		// Eliminate e[i] using row i-2, then a'[i] using row i-1.
		me := e[i]
		ai := a[i] - me*c[i-2]
		bi := b[i] - me*f[i-2]
		di := d[i] - me*d[i-2]
		ma := ai
		bi -= ma * c[i-1]
		ci := c[i] - ma*f[i-1]
		di -= ma * d[i-1]
		inv = 1 / bi
		c[i] = ci * inv
		f[i] *= inv
		d[i] = di * inv
	}
	// Back substitution.
	d[n-2] -= c[n-2] * d[n-1]
	for i := n - 3; i >= 0; i-- {
		d[i] -= c[i]*d[i+1] + f[i]*d[i+2]
	}
}

// MulTridiag computes y = T x for the tridiagonal matrix with bands
// (a, b, c). Used by tests to verify solver results independently.
func MulTridiag(a, b, c, x, y []float64) {
	n := len(x)
	if len(a) != n || len(b) != n || len(c) != n || len(y) != n {
		panic("linalg: MulTridiag length mismatch")
	}
	for i := 0; i < n; i++ {
		v := b[i] * x[i]
		if i > 0 {
			v += a[i] * x[i-1]
		}
		if i < n-1 {
			v += c[i] * x[i+1]
		}
		y[i] = v
	}
}

// MulPentadiag computes y = P x for the pentadiagonal matrix with bands
// (e, a, b, c, f).
func MulPentadiag(e, a, b, c, f, x, y []float64) {
	n := len(x)
	if len(e) != n || len(a) != n || len(b) != n || len(c) != n || len(f) != n || len(y) != n {
		panic("linalg: MulPentadiag length mismatch")
	}
	for i := 0; i < n; i++ {
		v := b[i] * x[i]
		if i > 0 {
			v += a[i] * x[i-1]
		}
		if i > 1 {
			v += e[i] * x[i-2]
		}
		if i < n-1 {
			v += c[i] * x[i+1]
		}
		if i < n-2 {
			v += f[i] * x[i+2]
		}
		y[i] = v
	}
}

// SolveTridiagPeriodic solves the cyclic tridiagonal system in which
// row i couples to rows i±1 mod n — the system an implicit sweep
// produces on a periodic direction. Bands a (sub, with a[0] coupling to
// row n−1), b (diagonal) and c (super, with c[n−1] coupling to row 0)
// and the right-hand side d; d is solved in place and all bands are
// overwritten. Uses the Sherman–Morrison rank-one correction with two
// Thomas solves; n must be at least 3.
func SolveTridiagPeriodic(a, b, c, d []float64) {
	n := len(d)
	if len(a) != n || len(b) != n || len(c) != n {
		panic("linalg: SolveTridiagPeriodic length mismatch")
	}
	if n < 3 {
		panic(fmt.Sprintf("linalg: SolveTridiagPeriodic needs n >= 3, got %d", n))
	}
	// Corner entries to be folded into the rank-one update:
	// A = T + u vᵀ with u = (γ, 0, …, 0, a[0]? ...). Standard choice:
	// γ = −b[0]; u = (γ, 0, …, c[n−1]); v = (1, 0, …, a[0]/γ).
	alpha := a[0]  // coupling of row 0 to row n-1
	beta := c[n-1] // coupling of row n-1 to row 0
	gamma := -b[0]

	// Modified diagonal.
	b[0] -= gamma
	b[n-1] -= alpha * beta / gamma

	// Save the super-diagonal for the second solve (SolveTridiag
	// overwrites it).
	cSaved := make([]float64, n)
	copy(cSaved, c)
	bSaved := make([]float64, n)
	copy(bSaved, b)
	aSaved := make([]float64, n)
	copy(aSaved, a)

	// First solve: T y = d.
	SolveTridiag(a, b, c, d)

	// Second solve: T q = u, u = (γ, 0, …, β).
	q := make([]float64, n)
	q[0] = gamma
	q[n-1] = beta
	SolveTridiag(aSaved, bSaved, cSaved, q)

	// x = y − q (vᵀy)/(1 + vᵀq), v = (1, 0, …, α/γ).
	vy := d[0] + alpha/gamma*d[n-1]
	vq := q[0] + alpha/gamma*q[n-1]
	factor := vy / (1 + vq)
	for i := 0; i < n; i++ {
		d[i] -= factor * q[i]
	}
}

// MulTridiagPeriodic computes y = A x for the cyclic tridiagonal matrix
// with bands (a, b, c) and wraparound entries a[0] (row 0 ← row n−1)
// and c[n−1] (row n−1 ← row 0).
func MulTridiagPeriodic(a, b, c, x, y []float64) {
	n := len(x)
	if len(a) != n || len(b) != n || len(c) != n || len(y) != n {
		panic("linalg: MulTridiagPeriodic length mismatch")
	}
	for i := 0; i < n; i++ {
		prev := (i - 1 + n) % n
		next := (i + 1) % n
		y[i] = a[i]*x[prev] + b[i]*x[i] + c[i]*x[next]
	}
}
