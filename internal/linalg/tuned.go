package linalg

// Tuned inner-loop kernels: the same Thomas/pentadiagonal eliminations
// as the scalar reference solvers, reshaped the way the paper's §4
// serial tuning reshaped the vector code — batched over independent
// systems so the divide/multiply recurrence of one system hides behind
// the arithmetic of its neighbors, with every slice length pinned up
// front so the compiler proves the inner loops in-bounds (no per-
// element bounds checks, no per-call allocation).
//
// Every tuned solver executes, per system, exactly the floating-point
// operations of its scalar reference in exactly the same order, so its
// results are bitwise identical — "faster" never means "different".
// The conformance matrix in internal/check enforces that equivalence on
// every build, and the CI bounds-check-elimination lint (lint/bce.sh)
// pins this file's residual bounds-check list so a hot loop silently
// re-growing per-element checks fails the build.

// Lanes is the batch width of the lane-batched solvers: the five
// characteristic fields of 3-D compressible flow, one independent
// system per conserved component.
const Lanes = BlockSize

// SolveTridiag5 solves five independent tridiagonal systems of order n
// — one per lane — with the lane loops interleaved: row i of every
// lane is eliminated before row i+1 of any lane, so the five serial
// recurrences overlap in the pipeline. Band and right-hand-side arrays
// may be longer than n; only [:n] is touched. d is solved in place; b
// is read-only but c is overwritten, exactly like SolveTridiag.
func SolveTridiag5(a, b, c, d *[Lanes][]float64, n int) {
	if n <= 0 {
		if n == 0 {
			return
		}
		panic("linalg: SolveTridiag5 needs n >= 0")
	}
	checkLanes("SolveTridiag5", n, a, b, c, d)
	a0, a1, a2, a3, a4 := a[0][:n], a[1][:n], a[2][:n], a[3][:n], a[4][:n]
	b0, b1, b2, b3, b4 := b[0][:n], b[1][:n], b[2][:n], b[3][:n], b[4][:n]
	c0, c1, c2, c3, c4 := c[0][:n], c[1][:n], c[2][:n], c[3][:n], c[4][:n]
	d0, d1, d2, d3, d4 := d[0][:n], d[1][:n], d[2][:n], d[3][:n], d[4][:n]

	// Forward elimination, row 0: normalize each lane.
	i0 := 1 / b0[0]
	i1 := 1 / b1[0]
	i2 := 1 / b2[0]
	i3 := 1 / b3[0]
	i4 := 1 / b4[0]
	c0[0] *= i0
	c1[0] *= i1
	c2[0] *= i2
	c3[0] *= i3
	c4[0] *= i4
	d0[0] *= i0
	d1[0] *= i1
	d2[0] *= i2
	d3[0] *= i3
	d4[0] *= i4
	for i := 1; i < n; i++ {
		im := i - 1
		i0 = 1 / (b0[i] - a0[i]*c0[im])
		i1 = 1 / (b1[i] - a1[i]*c1[im])
		i2 = 1 / (b2[i] - a2[i]*c2[im])
		i3 = 1 / (b3[i] - a3[i]*c3[im])
		i4 = 1 / (b4[i] - a4[i]*c4[im])
		c0[i] *= i0
		c1[i] *= i1
		c2[i] *= i2
		c3[i] *= i3
		c4[i] *= i4
		d0[i] = (d0[i] - a0[i]*d0[im]) * i0
		d1[i] = (d1[i] - a1[i]*d1[im]) * i1
		d2[i] = (d2[i] - a2[i]*d2[im]) * i2
		d3[i] = (d3[i] - a3[i]*d3[im]) * i3
		d4[i] = (d4[i] - a4[i]*d4[im]) * i4
	}
	// Back substitution, all lanes per row.
	for i := n - 2; i >= 0; i-- {
		ip := i + 1
		d0[i] -= c0[i] * d0[ip]
		d1[i] -= c1[i] * d1[ip]
		d2[i] -= c2[i] * d2[ip]
		d3[i] -= c3[i] * d3[ip]
		d4[i] -= c4[i] * d4[ip]
	}
}

// SolvePentadiag5 solves five independent pentadiagonal systems of
// order n, one per lane, with the lane loops interleaved row-wise like
// SolveTridiag5: the two-row elimination of one lane hides behind its
// neighbors' arithmetic. Each lane performs the eliminations of
// SolvePentadiag in the same order, so results are bitwise identical
// to five scalar calls. Arrays may be longer than n.
func SolvePentadiag5(e, a, b, c, f, d *[Lanes][]float64, n int) {
	if n <= 0 {
		if n == 0 {
			return
		}
		panic("linalg: SolvePentadiag5 needs n >= 0")
	}
	checkLanes("SolvePentadiag5", n, e, a, b, c, f, d)
	if n == 1 {
		for l := 0; l < Lanes; l++ {
			d[l][0] /= b[l][0]
		}
		return
	}
	e0, e1, e2, e3, e4 := e[0][:n], e[1][:n], e[2][:n], e[3][:n], e[4][:n]
	a0, a1, a2, a3, a4 := a[0][:n], a[1][:n], a[2][:n], a[3][:n], a[4][:n]
	b0, b1, b2, b3, b4 := b[0][:n], b[1][:n], b[2][:n], b[3][:n], b[4][:n]
	c0, c1, c2, c3, c4 := c[0][:n], c[1][:n], c[2][:n], c[3][:n], c[4][:n]
	f0, f1, f2, f3, f4 := f[0][:n], f[1][:n], f[2][:n], f[3][:n], f[4][:n]
	d0, d1, d2, d3, d4 := d[0][:n], d[1][:n], d[2][:n], d[3][:n], d[4][:n]

	// Row 0: normalize each lane.
	i0 := 1 / b0[0]
	i1 := 1 / b1[0]
	i2 := 1 / b2[0]
	i3 := 1 / b3[0]
	i4 := 1 / b4[0]
	c0[0] *= i0
	c1[0] *= i1
	c2[0] *= i2
	c3[0] *= i3
	c4[0] *= i4
	f0[0] *= i0
	f1[0] *= i1
	f2[0] *= i2
	f3[0] *= i3
	f4[0] *= i4
	d0[0] *= i0
	d1[0] *= i1
	d2[0] *= i2
	d3[0] *= i3
	d4[0] *= i4
	// Row 1: single-row elimination against row 0.
	m0 := a0[1]
	m1 := a1[1]
	m2 := a2[1]
	m3 := a3[1]
	m4 := a4[1]
	i0 = 1 / (b0[1] - m0*c0[0])
	i1 = 1 / (b1[1] - m1*c1[0])
	i2 = 1 / (b2[1] - m2*c2[0])
	i3 = 1 / (b3[1] - m3*c3[0])
	i4 = 1 / (b4[1] - m4*c4[0])
	c0[1] = (c0[1] - m0*f0[0]) * i0
	c1[1] = (c1[1] - m1*f1[0]) * i1
	c2[1] = (c2[1] - m2*f2[0]) * i2
	c3[1] = (c3[1] - m3*f3[0]) * i3
	c4[1] = (c4[1] - m4*f4[0]) * i4
	f0[1] *= i0
	f1[1] *= i1
	f2[1] *= i2
	f3[1] *= i3
	f4[1] *= i4
	d0[1] = (d0[1] - m0*d0[0]) * i0
	d1[1] = (d1[1] - m1*d1[0]) * i1
	d2[1] = (d2[1] - m2*d2[0]) * i2
	d3[1] = (d3[1] - m3*d3[0]) * i3
	d4[1] = (d4[1] - m4*d4[0]) * i4
	// Main forward loop: two-row elimination, all lanes per row.
	for i := 2; i < n; i++ {
		im1, im2 := i-1, i-2
		t0 := e0[i]
		t1 := e1[i]
		t2 := e2[i]
		t3 := e3[i]
		t4 := e4[i]
		m0 = a0[i] - t0*c0[im2]
		m1 = a1[i] - t1*c1[im2]
		m2 = a2[i] - t2*c2[im2]
		m3 = a3[i] - t3*c3[im2]
		m4 = a4[i] - t4*c4[im2]
		w0 := b0[i] - t0*f0[im2] - m0*c0[im1]
		w1 := b1[i] - t1*f1[im2] - m1*c1[im1]
		w2 := b2[i] - t2*f2[im2] - m2*c2[im1]
		w3 := b3[i] - t3*f3[im2] - m3*c3[im1]
		w4 := b4[i] - t4*f4[im2] - m4*c4[im1]
		u0 := d0[i] - t0*d0[im2] - m0*d0[im1]
		u1 := d1[i] - t1*d1[im2] - m1*d1[im1]
		u2 := d2[i] - t2*d2[im2] - m2*d2[im1]
		u3 := d3[i] - t3*d3[im2] - m3*d3[im1]
		u4 := d4[i] - t4*d4[im2] - m4*d4[im1]
		i0 = 1 / w0
		i1 = 1 / w1
		i2 = 1 / w2
		i3 = 1 / w3
		i4 = 1 / w4
		c0[i] = (c0[i] - m0*f0[im1]) * i0
		c1[i] = (c1[i] - m1*f1[im1]) * i1
		c2[i] = (c2[i] - m2*f2[im1]) * i2
		c3[i] = (c3[i] - m3*f3[im1]) * i3
		c4[i] = (c4[i] - m4*f4[im1]) * i4
		f0[i] *= i0
		f1[i] *= i1
		f2[i] *= i2
		f3[i] *= i3
		f4[i] *= i4
		d0[i] = u0 * i0
		d1[i] = u1 * i1
		d2[i] = u2 * i2
		d3[i] = u3 * i3
		d4[i] = u4 * i4
	}
	// Back substitution.
	nm2 := n - 2
	d0[nm2] -= c0[nm2] * d0[nm2+1]
	d1[nm2] -= c1[nm2] * d1[nm2+1]
	d2[nm2] -= c2[nm2] * d2[nm2+1]
	d3[nm2] -= c3[nm2] * d3[nm2+1]
	d4[nm2] -= c4[nm2] * d4[nm2+1]
	for i := n - 3; i >= 0; i-- {
		ip1, ip2 := i+1, i+2
		d0[i] -= c0[i]*d0[ip1] + f0[i]*d0[ip2]
		d1[i] -= c1[i]*d1[ip1] + f1[i]*d1[ip2]
		d2[i] -= c2[i]*d2[ip1] + f2[i]*d2[ip2]
		d3[i] -= c3[i]*d3[ip1] + f3[i]*d3[ip2]
		d4[i] -= c4[i]*d4[ip1] + f4[i]*d4[ip2]
	}
}

// checkLanes validates every lane of every band up front, before any
// element is touched, so a panicking call leaves its arguments
// bit-identical to the caller's originals.
func checkLanes(kernel string, n int, bands ...*[Lanes][]float64) {
	for _, band := range bands {
		for l := 0; l < Lanes; l++ {
			if len(band[l]) < n {
				panic("linalg: " + kernel + " lane shorter than n")
			}
		}
	}
}

// SolveTridiagPlanarTuned is SolveTridiagPlanar — nsys independent
// tridiagonal systems in [n][nsys] plane layout, inner loop over
// systems — with the system loop unrolled four wide over row subslices
// whose bounds the compiler can discharge. Per system it performs the
// scalar solver's operations in the scalar solver's order, so results
// are bitwise identical to SolveTridiagPlanar. Unlike the scalar form
// it accepts the empty shapes (n == 0 or nsys == 0 is a no-op), and it
// validates all four array lengths — overflow-safely — before writing
// anything.
func SolveTridiagPlanarTuned(a, b, c, d []float64, n, nsys int) {
	if n < 0 || nsys < 0 {
		panic("linalg: SolveTridiagPlanarTuned needs n, nsys >= 0")
	}
	if n == 0 || nsys == 0 {
		return
	}
	if nsys > (int(^uint(0)>>1))/n {
		panic("linalg: SolveTridiagPlanarTuned n*nsys overflows")
	}
	need := n * nsys
	if len(a) < need || len(b) < need || len(c) < need || len(d) < need {
		panic("linalg: SolveTridiagPlanarTuned arrays shorter than n*nsys")
	}

	// Row 0: normalize every system.
	planarRow0(b[:nsys], c[:nsys], d[:nsys], nsys)
	// Forward elimination over rows; each row's system loop is
	// independent, so it unrolls without reassociating anything.
	for i := 1; i < n; i++ {
		row, prev := i*nsys, (i-1)*nsys
		planarForward(
			a[row:row+nsys], b[row:row+nsys], c[row:row+nsys], d[row:row+nsys],
			c[prev:prev+nsys], d[prev:prev+nsys], nsys)
	}
	// Back substitution.
	for i := n - 2; i >= 0; i-- {
		row, next := i*nsys, (i+1)*nsys
		planarBack(c[row:row+nsys], d[row:row+nsys], d[next:next+nsys], nsys)
	}
}

// planarRow0 normalizes row 0 of every system: c[s] /= b[s], d[s] /= b[s]
// via the reciprocal, matching the scalar solver exactly.
func planarRow0(b, c, d []float64, nsys int) {
	b, c, d = b[:nsys], c[:nsys], d[:nsys]
	s := 0
	for ; s+3 < nsys; s += 4 {
		i0 := 1 / b[s]
		i1 := 1 / b[s+1]
		i2 := 1 / b[s+2]
		i3 := 1 / b[s+3]
		c[s] *= i0
		c[s+1] *= i1
		c[s+2] *= i2
		c[s+3] *= i3
		d[s] *= i0
		d[s+1] *= i1
		d[s+2] *= i2
		d[s+3] *= i3
	}
	for ; s < nsys; s++ {
		inv := 1 / b[s]
		c[s] *= inv
		d[s] *= inv
	}
}

// planarForward eliminates one row of every system against the
// previous row (cp, dp are the previous row's modified super-diagonal
// and RHS).
func planarForward(a, b, c, d, cp, dp []float64, nsys int) {
	a, b, c, d = a[:nsys], b[:nsys], c[:nsys], d[:nsys]
	cp, dp = cp[:nsys], dp[:nsys]
	s := 0
	for ; s+3 < nsys; s += 4 {
		i0 := 1 / (b[s] - a[s]*cp[s])
		i1 := 1 / (b[s+1] - a[s+1]*cp[s+1])
		i2 := 1 / (b[s+2] - a[s+2]*cp[s+2])
		i3 := 1 / (b[s+3] - a[s+3]*cp[s+3])
		c[s] *= i0
		c[s+1] *= i1
		c[s+2] *= i2
		c[s+3] *= i3
		d[s] = (d[s] - a[s]*dp[s]) * i0
		d[s+1] = (d[s+1] - a[s+1]*dp[s+1]) * i1
		d[s+2] = (d[s+2] - a[s+2]*dp[s+2]) * i2
		d[s+3] = (d[s+3] - a[s+3]*dp[s+3]) * i3
	}
	for ; s < nsys; s++ {
		inv := 1 / (b[s] - a[s]*cp[s])
		c[s] *= inv
		d[s] = (d[s] - a[s]*dp[s]) * inv
	}
}

// planarBack substitutes one row of every system against the next row
// (dn is the next row's solved values).
func planarBack(c, d, dn []float64, nsys int) {
	c, d, dn = c[:nsys], d[:nsys], dn[:nsys]
	s := 0
	for ; s+3 < nsys; s += 4 {
		d[s] -= c[s] * dn[s]
		d[s+1] -= c[s+1] * dn[s+1]
		d[s+2] -= c[s+2] * dn[s+2]
		d[s+3] -= c[s+3] * dn[s+3]
	}
	for ; s < nsys; s++ {
		d[s] -= c[s] * dn[s]
	}
}
