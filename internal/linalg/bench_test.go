package linalg

import (
	"math/rand"
	"testing"
)

func benchSystem(n int) (a, b, c, d []float64) {
	rng := rand.New(rand.NewSource(99))
	a = make([]float64, n)
	b = make([]float64, n)
	c = make([]float64, n)
	d = make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Float64() - 0.5
		c[i] = rng.Float64() - 0.5
		b[i] = 3 + rng.Float64()
		d[i] = rng.Float64()
	}
	return
}

func BenchmarkSolveTridiag(b *testing.B) {
	const n = 256
	a, bb, c, d := benchSystem(n)
	wa := make([]float64, n)
	wb := make([]float64, n)
	wc := make([]float64, n)
	wd := make([]float64, n)
	b.SetBytes(int64(n * 8))
	for i := 0; i < b.N; i++ {
		copy(wa, a)
		copy(wb, bb)
		copy(wc, c)
		copy(wd, d)
		SolveTridiag(wa, wb, wc, wd)
	}
}

func BenchmarkSolveTridiagConst(b *testing.B) {
	const n = 256
	d := make([]float64, n)
	w := make([]float64, n)
	for i := range d {
		d[i] = float64(i%7) + 1
	}
	wd := make([]float64, n)
	b.SetBytes(int64(n * 8))
	for i := 0; i < b.N; i++ {
		copy(wd, d)
		SolveTridiagConst(-1, 4, -1.5, wd, w)
	}
}

// BenchmarkSolveTridiagPlanar measures the vector-style batched solve
// against an equivalent loop of scalar solves (same total work), the
// kernel-level version of the vector-vs-cache comparison.
func BenchmarkSolveTridiagPlanar(b *testing.B) {
	const n, nsys = 128, 64
	a, bb, c, d := benchSystem(n * nsys)
	wa := make([]float64, n*nsys)
	wb := make([]float64, n*nsys)
	wc := make([]float64, n*nsys)
	wd := make([]float64, n*nsys)
	b.Run("planar", func(b *testing.B) {
		b.SetBytes(int64(n * nsys * 8))
		for i := 0; i < b.N; i++ {
			copy(wa, a)
			copy(wb, bb)
			copy(wc, c)
			copy(wd, d)
			SolveTridiagPlanar(wa, wb, wc, wd, n, nsys)
		}
	})
	b.Run("scalar-loop", func(b *testing.B) {
		b.SetBytes(int64(n * nsys * 8))
		for i := 0; i < b.N; i++ {
			copy(wa, a)
			copy(wb, bb)
			copy(wc, c)
			copy(wd, d)
			for s := 0; s < nsys; s++ {
				SolveTridiag(wa[s*n:(s+1)*n], wb[s*n:(s+1)*n], wc[s*n:(s+1)*n], wd[s*n:(s+1)*n])
			}
		}
	})
}

func BenchmarkSolvePentadiag(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(7))
	mk := func() []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() - 0.5
		}
		return v
	}
	e, a, c, f, d := mk(), mk(), mk(), mk(), mk()
	bb := make([]float64, n)
	for i := range bb {
		bb[i] = 4 + rng.Float64()
	}
	we, wa, wb, wc, wf, wd := mk(), mk(), mk(), mk(), mk(), mk()
	b.SetBytes(int64(n * 8))
	for i := 0; i < b.N; i++ {
		copy(we, e)
		copy(wa, a)
		copy(wb, bb)
		copy(wc, c)
		copy(wf, f)
		copy(wd, d)
		SolvePentadiag(we, wa, wb, wc, wf, wd)
	}
}

func BenchmarkFactor5Solve(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	m := randMat5(rng, 6)
	var x Vec5
	for i := range x {
		x[i] = rng.Float64()
	}
	for i := 0; i < b.N; i++ {
		lu, err := Factor5(&m)
		if err != nil {
			b.Fatal(err)
		}
		x = lu.Solve(&x)
	}
}

func BenchmarkSolveBlockTridiag(b *testing.B) {
	const n = 64
	rng := rand.New(rand.NewSource(9))
	a := make([]Mat5, n)
	bb := make([]Mat5, n)
	c := make([]Mat5, n)
	d := make([]Vec5, n)
	for i := 0; i < n; i++ {
		a[i] = randMat5(rng, 0)
		c[i] = randMat5(rng, 0)
		bb[i] = randMat5(rng, 12)
		for k := range d[i] {
			d[i][k] = rng.Float64()
		}
	}
	ws := NewBlockTridiagWorkspace(n)
	wa := make([]Mat5, n)
	wbb := make([]Mat5, n)
	wc := make([]Mat5, n)
	wd := make([]Vec5, n)
	for i := 0; i < b.N; i++ {
		copy(wa, a)
		copy(wbb, bb)
		copy(wc, c)
		copy(wd, d)
		if err := SolveBlockTridiag(ws, wa, wbb, wc, wd); err != nil {
			b.Fatal(err)
		}
	}
}
