package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// laneBands builds Lanes independent diagonally dominant tridiagonal
// systems of order n, returning the band arrays in lane-major form plus
// a scalar-reference copy.
func laneBands(rng *rand.Rand, n int) (a, b, c, d, aRef, bRef, cRef, dRef [Lanes][]float64) {
	for l := 0; l < Lanes; l++ {
		al, bl, cl, _, dl := diagDominant(rng, n)
		a[l], b[l], c[l], d[l] = al, bl, cl, dl
		aRef[l] = append([]float64(nil), al...)
		bRef[l] = append([]float64(nil), bl...)
		cRef[l] = append([]float64(nil), cl...)
		dRef[l] = append([]float64(nil), dl...)
	}
	return
}

func firstBitMismatch(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: bit mismatch at [%d]: %v vs %v", name, i, got[i], want[i])
		}
	}
}

func TestSolveTridiag5MatchesScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 4, 17, 64, 129} {
		a, b, c, d, aRef, bRef, cRef, dRef := laneBands(rng, n)
		SolveTridiag5(&a, &b, &c, &d, n)
		for l := 0; l < Lanes; l++ {
			SolveTridiag(aRef[l], bRef[l], cRef[l], dRef[l])
			firstBitMismatch(t, "d", d[l], dRef[l])
			firstBitMismatch(t, "c", c[l], cRef[l])
		}
	}
	// n == 0 is a no-op even on nil lanes.
	var empty [Lanes][]float64
	SolveTridiag5(&empty, &empty, &empty, &empty, 0)
}

func TestSolveTridiag5LongerLanes(t *testing.T) {
	// Lanes longer than n must only have their first n entries touched.
	rng := rand.New(rand.NewSource(12))
	const n, extra = 9, 4
	a, b, c, d, aRef, bRef, cRef, dRef := laneBands(rng, n+extra)
	SolveTridiag5(&a, &b, &c, &d, n)
	for l := 0; l < Lanes; l++ {
		SolveTridiag(aRef[l][:n], bRef[l][:n], cRef[l][:n], dRef[l][:n])
		firstBitMismatch(t, "d head", d[l][:n], dRef[l][:n])
		firstBitMismatch(t, "d tail", d[l][n:], dRef[l][n:])
		firstBitMismatch(t, "c tail", c[l][n:], cRef[l][n:])
	}
}

func TestSolveTridiag5Property(t *testing.T) {
	f := func(seed int64, nu uint8) bool {
		n := int(nu%60) + 1
		rng := rand.New(rand.NewSource(seed))
		a, b, c, d, aRef, bRef, cRef, dRef := laneBands(rng, n)
		SolveTridiag5(&a, &b, &c, &d, n)
		for l := 0; l < Lanes; l++ {
			SolveTridiag(aRef[l], bRef[l], cRef[l], dRef[l])
			for i := 0; i < n; i++ {
				if math.Float64bits(d[l][i]) != math.Float64bits(dRef[l][i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// pentaBands builds Lanes diagonally dominant pentadiagonal systems.
func pentaBands(rng *rand.Rand, n int) (e, a, b, c, f, d [Lanes][]float64) {
	for l := 0; l < Lanes; l++ {
		e[l] = make([]float64, n)
		a[l] = make([]float64, n)
		b[l] = make([]float64, n)
		c[l] = make([]float64, n)
		f[l] = make([]float64, n)
		d[l] = make([]float64, n)
		for i := 0; i < n; i++ {
			e[l][i] = rng.Float64()*0.5 - 0.25
			a[l][i] = rng.Float64() - 0.5
			c[l][i] = rng.Float64() - 0.5
			f[l][i] = rng.Float64()*0.5 - 0.25
			b[l][i] = 3 + rng.Float64()
			d[l][i] = rng.Float64()*10 - 5
		}
	}
	return
}

func clone5(x *[Lanes][]float64) [Lanes][]float64 {
	var out [Lanes][]float64
	for l := range x {
		out[l] = append([]float64(nil), x[l]...)
	}
	return out
}

func TestSolvePentadiag5MatchesScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 3, 4, 5, 17, 60} {
		e, a, b, c, f, d := pentaBands(rng, n)
		eR, aR, bR, cR, fR, dR := clone5(&e), clone5(&a), clone5(&b), clone5(&c), clone5(&f), clone5(&d)
		SolvePentadiag5(&e, &a, &b, &c, &f, &d, n)
		for l := 0; l < Lanes; l++ {
			SolvePentadiag(eR[l], aR[l], bR[l], cR[l], fR[l], dR[l])
			firstBitMismatch(t, "d", d[l], dR[l])
		}
	}
	var empty [Lanes][]float64
	SolvePentadiag5(&empty, &empty, &empty, &empty, &empty, &empty, 0)
}

func TestSolveTridiagPlanarTunedMatchesScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	shapes := []struct{ n, nsys int }{
		{1, 1}, {1, 5}, {2, 4}, {3, 7}, {17, 1}, {9, 8}, {13, 29}, {40, 13},
		{2, 3}, // nsys below the unroll width: remainder lanes only
	}
	for _, sh := range shapes {
		need := sh.n * sh.nsys
		a, b, c, d := make([]float64, need), make([]float64, need), make([]float64, need), make([]float64, need)
		for i := range a {
			a[i] = rng.Float64() - 0.5
			c[i] = rng.Float64() - 0.5
			b[i] = 2.5 + rng.Float64()
			d[i] = rng.Float64()*10 - 5
		}
		aR := append([]float64(nil), a...)
		bR := append([]float64(nil), b...)
		cR := append([]float64(nil), c...)
		dR := append([]float64(nil), d...)
		// Tight subslices: exactly n*nsys, so any out-of-range touch in
		// the unrolled body panics here.
		SolveTridiagPlanarTuned(a[:need], b[:need], c[:need], d[:need], sh.n, sh.nsys)
		SolveTridiagPlanar(aR, bR, cR, dR, sh.n, sh.nsys)
		firstBitMismatch(t, "d", d, dR)
		firstBitMismatch(t, "c", c, cR)
	}
}

func TestSolveTridiagPlanarTunedEdgeShapes(t *testing.T) {
	// The tuned planar solver accepts the empty shapes as no-ops and
	// leaves the arrays untouched.
	buf := []float64{1, 2, 3}
	ref := append([]float64(nil), buf...)
	SolveTridiagPlanarTuned(buf, buf, buf, buf, 0, 7)
	SolveTridiagPlanarTuned(buf, buf, buf, buf, 7, 0)
	firstBitMismatch(t, "no-op", buf, ref)

	for name, fn := range map[string]func(){
		"negative n":    func() { SolveTridiagPlanarTuned(nil, nil, nil, nil, -1, 2) },
		"negative nsys": func() { SolveTridiagPlanarTuned(nil, nil, nil, nil, 2, -1) },
		"short arrays": func() {
			SolveTridiagPlanarTuned(make([]float64, 5), make([]float64, 5), make([]float64, 5), make([]float64, 5), 3, 2)
		},
		"overflow": func() {
			big := (int(^uint(0)>>1))/2 + 1
			SolveTridiagPlanarTuned(make([]float64, 8), make([]float64, 8), make([]float64, 8), make([]float64, 8), 3, big)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestPlanarValidationBeforeWrites is the regression test for the
// partial-write panic: an n*nsys product that overflowed used to slip
// past the length check and blow up mid-elimination, after row 0 had
// already been scaled. Both planar solvers must now reject the shape
// before touching a single element.
func TestPlanarValidationBeforeWrites(t *testing.T) {
	big := (int(^uint(0)>>1))/3 + 1 // 3*big overflows
	for name, fn := range map[string]func(a, b, c, d []float64){
		"scalar": func(a, b, c, d []float64) { SolveTridiagPlanar(a, b, c, d, 3, big) },
		"tuned":  func(a, b, c, d []float64) { SolveTridiagPlanarTuned(a, b, c, d, 3, big) },
	} {
		a := []float64{1, 2, 3, 4, 5}
		b := []float64{6, 7, 8, 9, 10}
		c := []float64{11, 12, 13, 14, 15}
		d := []float64{16, 17, 18, 19, 20}
		aR := append([]float64(nil), a...)
		bR := append([]float64(nil), b...)
		cR := append([]float64(nil), c...)
		dR := append([]float64(nil), d...)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: overflowing shape must panic", name)
				}
				firstBitMismatch(t, name+" a", a, aR)
				firstBitMismatch(t, name+" b", b, bR)
				firstBitMismatch(t, name+" c", c, cR)
				firstBitMismatch(t, name+" d", d, dR)
			}()
			fn(a, b, c, d)
		}()
	}
}

// TestLaneSolversValidateBeforeWrites pins the same property for the
// lane-batched solvers: a short lane panics with every lane untouched.
func TestLaneSolversValidateBeforeWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a, b, c, d, aR, bR, cR, dR := laneBands(rng, 6)
	d[4] = d[4][:3] // one short lane
	dR[4] = dR[4][:3]
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short lane must panic")
			}
			for l := 0; l < Lanes; l++ {
				firstBitMismatch(t, "a", a[l], aR[l])
				firstBitMismatch(t, "b", b[l], bR[l])
				firstBitMismatch(t, "c", c[l], cR[l])
				firstBitMismatch(t, "d", d[l], dR[l])
			}
		}()
		SolveTridiag5(&a, &b, &c, &d, 6)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative n must panic")
			}
		}()
		SolveTridiag5(&a, &b, &c, &d, -1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pentadiag short lane must panic")
			}
		}()
		SolvePentadiag5(&a, &a, &b, &c, &a, &d, 6)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pentadiag negative n must panic")
			}
		}()
		SolvePentadiag5(&a, &a, &b, &c, &a, &d, -2)
	}()
}
