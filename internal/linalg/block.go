package linalg

import (
	"fmt"
	"math"
)

// BlockSize is the block order used by the block-tridiagonal solver:
// the five conserved variables of 3-D compressible flow.
const BlockSize = 5

// Mat5 is a dense 5×5 matrix in row-major order.
type Mat5 [BlockSize * BlockSize]float64

// Vec5 is a length-5 vector.
type Vec5 [BlockSize]float64

// Identity5 returns the 5×5 identity.
func Identity5() Mat5 {
	var m Mat5
	for i := 0; i < BlockSize; i++ {
		m[i*BlockSize+i] = 1
	}
	return m
}

// Mul5 returns a·b.
func Mul5(a, b *Mat5) Mat5 {
	var c Mat5
	for i := 0; i < BlockSize; i++ {
		for k := 0; k < BlockSize; k++ {
			aik := a[i*BlockSize+k]
			if aik == 0 {
				continue
			}
			for j := 0; j < BlockSize; j++ {
				c[i*BlockSize+j] += aik * b[k*BlockSize+j]
			}
		}
	}
	return c
}

// MulVec5 returns a·x.
func MulVec5(a *Mat5, x *Vec5) Vec5 {
	var y Vec5
	for i := 0; i < BlockSize; i++ {
		s := 0.0
		for j := 0; j < BlockSize; j++ {
			s += a[i*BlockSize+j] * x[j]
		}
		y[i] = s
	}
	return y
}

// AddScaled5 returns a + s·b.
func AddScaled5(a *Mat5, s float64, b *Mat5) Mat5 {
	var c Mat5
	for i := range c {
		c[i] = a[i] + s*b[i]
	}
	return c
}

// LU5 is the LU factorization (with partial pivoting) of a 5×5 matrix.
type LU5 struct {
	lu   Mat5
	piv  [BlockSize]int
	sign int
}

// Factor5 computes the LU factorization of m with partial pivoting.
// It returns an error if the matrix is numerically singular.
func Factor5(m *Mat5) (LU5, error) {
	f := LU5{lu: *m, sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	for col := 0; col < BlockSize; col++ {
		// Pivot selection.
		p, maxAbs := col, math.Abs(f.lu[col*BlockSize+col])
		for r := col + 1; r < BlockSize; r++ {
			if v := math.Abs(f.lu[r*BlockSize+col]); v > maxAbs {
				p, maxAbs = r, v
			}
		}
		if maxAbs == 0 {
			return LU5{}, fmt.Errorf("linalg: Factor5: singular matrix at column %d", col)
		}
		if p != col {
			for j := 0; j < BlockSize; j++ {
				f.lu[p*BlockSize+j], f.lu[col*BlockSize+j] = f.lu[col*BlockSize+j], f.lu[p*BlockSize+j]
			}
			f.piv[p], f.piv[col] = f.piv[col], f.piv[p]
			f.sign = -f.sign
		}
		inv := 1 / f.lu[col*BlockSize+col]
		for r := col + 1; r < BlockSize; r++ {
			l := f.lu[r*BlockSize+col] * inv
			f.lu[r*BlockSize+col] = l
			for j := col + 1; j < BlockSize; j++ {
				f.lu[r*BlockSize+j] -= l * f.lu[col*BlockSize+j]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b for the factored matrix.
func (f *LU5) Solve(b *Vec5) Vec5 {
	var x Vec5
	for i := 0; i < BlockSize; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < BlockSize; i++ {
		for j := 0; j < i; j++ {
			x[i] -= f.lu[i*BlockSize+j] * x[j]
		}
	}
	// Back substitution.
	for i := BlockSize - 1; i >= 0; i-- {
		for j := i + 1; j < BlockSize; j++ {
			x[i] -= f.lu[i*BlockSize+j] * x[j]
		}
		x[i] /= f.lu[i*BlockSize+i]
	}
	return x
}

// SolveMat solves A X = B column by column, returning X.
func (f *LU5) SolveMat(b *Mat5) Mat5 {
	var x Mat5
	for col := 0; col < BlockSize; col++ {
		var rhs Vec5
		for r := 0; r < BlockSize; r++ {
			rhs[r] = b[r*BlockSize+col]
		}
		sol := f.Solve(&rhs)
		for r := 0; r < BlockSize; r++ {
			x[r*BlockSize+col] = sol[r]
		}
	}
	return x
}

// BlockTridiagWorkspace holds the scratch a block-tridiagonal solve of
// order up to nmax needs, so repeated solves allocate nothing.
type BlockTridiagWorkspace struct {
	cp []Mat5 // modified super-diagonal blocks
}

// NewBlockTridiagWorkspace returns workspace for systems of order up to
// nmax blocks.
func NewBlockTridiagWorkspace(nmax int) *BlockTridiagWorkspace {
	return &BlockTridiagWorkspace{cp: make([]Mat5, nmax)}
}

// SolveBlockTridiag solves the block-tridiagonal system with
// sub-diagonal blocks a, diagonal blocks b, super-diagonal blocks c and
// right-hand sides d (one Vec5 per block row), in place in d. a[0] and
// c[n-1] are ignored. This is the full (non-diagonalized) Beam–Warming
// implicit operator, kept as the reference the diagonalized scheme is
// validated against.
func SolveBlockTridiag(ws *BlockTridiagWorkspace, a, b, c []Mat5, d []Vec5) error {
	n := len(d)
	if len(a) != n || len(b) != n || len(c) != n {
		panic("linalg: SolveBlockTridiag length mismatch")
	}
	if n == 0 {
		return nil
	}
	if len(ws.cp) < n {
		panic(fmt.Sprintf("linalg: workspace too small: %d < %d", len(ws.cp), n))
	}
	f, err := Factor5(&b[0])
	if err != nil {
		return fmt.Errorf("block row 0: %w", err)
	}
	ws.cp[0] = f.SolveMat(&c[0])
	d[0] = f.Solve(&d[0])
	for i := 1; i < n; i++ {
		// b'_i = b_i - a_i · cp_{i-1}
		ac := Mul5(&a[i], &ws.cp[i-1])
		bi := AddScaled5(&b[i], -1, &ac)
		f, err := Factor5(&bi)
		if err != nil {
			return fmt.Errorf("block row %d: %w", i, err)
		}
		ws.cp[i] = f.SolveMat(&c[i])
		ad := MulVec5(&a[i], &d[i-1])
		var rhs Vec5
		for k := range rhs {
			rhs[k] = d[i][k] - ad[k]
		}
		d[i] = f.Solve(&rhs)
	}
	for i := n - 2; i >= 0; i-- {
		cd := MulVec5(&ws.cp[i], &d[i+1])
		for k := range d[i] {
			d[i][k] -= cd[k]
		}
	}
	return nil
}
