package linalg

import (
	"math/rand"
	"testing"
)

// benchLanes builds Lanes bench systems of order n plus working copies.
func benchLanes(n int) (src, work [4][Lanes][]float64) {
	rng := rand.New(rand.NewSource(21))
	for l := 0; l < Lanes; l++ {
		for k := 0; k < 4; k++ {
			src[k][l] = make([]float64, n)
			work[k][l] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			src[0][l][i] = rng.Float64() - 0.5
			src[1][l][i] = 3 + rng.Float64()
			src[2][l][i] = rng.Float64() - 0.5
			src[3][l][i] = rng.Float64()
		}
	}
	return
}

// BenchmarkSolveTridiagBatch compares the lane-batched tridiagonal
// solve against the equivalent loop of five scalar solves — the
// interleaving is where the recurrence latency hides.
func BenchmarkSolveTridiagBatch(b *testing.B) {
	const n = 256
	src, work := benchLanes(n)
	reload := func() {
		for k := 0; k < 4; k++ {
			for l := 0; l < Lanes; l++ {
				copy(work[k][l], src[k][l])
			}
		}
	}
	b.Run("batch5", func(b *testing.B) {
		b.SetBytes(int64(Lanes * n * 8))
		for i := 0; i < b.N; i++ {
			reload()
			SolveTridiag5(&work[0], &work[1], &work[2], &work[3], n)
		}
	})
	b.Run("scalar-loop", func(b *testing.B) {
		b.SetBytes(int64(Lanes * n * 8))
		for i := 0; i < b.N; i++ {
			reload()
			for l := 0; l < Lanes; l++ {
				SolveTridiag(work[0][l], work[1][l], work[2][l], work[3][l])
			}
		}
	})
}

// BenchmarkSolvePentadiagBatch compares the lane-batched pentadiagonal
// solve against the equivalent loop of five scalar solves.
func BenchmarkSolvePentadiagBatch(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(22))
	var src, work [6][Lanes][]float64
	for l := 0; l < Lanes; l++ {
		for k := 0; k < 6; k++ {
			src[k][l] = make([]float64, n)
			work[k][l] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			src[0][l][i] = 0.25 * (rng.Float64() - 0.5)
			src[1][l][i] = rng.Float64() - 0.5
			src[2][l][i] = 4 + rng.Float64()
			src[3][l][i] = rng.Float64() - 0.5
			src[4][l][i] = 0.25 * (rng.Float64() - 0.5)
			src[5][l][i] = rng.Float64()
		}
	}
	reload := func() {
		for k := 0; k < 6; k++ {
			for l := 0; l < Lanes; l++ {
				copy(work[k][l], src[k][l])
			}
		}
	}
	b.Run("batch5", func(b *testing.B) {
		b.SetBytes(int64(Lanes * n * 8))
		for i := 0; i < b.N; i++ {
			reload()
			SolvePentadiag5(&work[0], &work[1], &work[2], &work[3], &work[4], &work[5], n)
		}
	})
	b.Run("scalar-loop", func(b *testing.B) {
		b.SetBytes(int64(Lanes * n * 8))
		for i := 0; i < b.N; i++ {
			reload()
			for l := 0; l < Lanes; l++ {
				SolvePentadiag(work[0][l], work[1][l], work[2][l], work[3][l], work[4][l], work[5][l])
			}
		}
	})
}

// BenchmarkSolveTridiagPlanarTuned compares the unrolled planar solve
// against the scalar planar reference on the same plane.
func BenchmarkSolveTridiagPlanarTuned(b *testing.B) {
	const n, nsys = 128, 64
	a, bb, c, d := benchSystem(n * nsys)
	wa := make([]float64, n*nsys)
	wb := make([]float64, n*nsys)
	wc := make([]float64, n*nsys)
	wd := make([]float64, n*nsys)
	reload := func() {
		copy(wa, a)
		copy(wb, bb)
		copy(wc, c)
		copy(wd, d)
	}
	b.Run("tuned", func(b *testing.B) {
		b.SetBytes(int64(n * nsys * 8))
		for i := 0; i < b.N; i++ {
			reload()
			SolveTridiagPlanarTuned(wa, wb, wc, wd, n, nsys)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(n * nsys * 8))
		for i := 0; i < b.N; i++ {
			reload()
			SolveTridiagPlanar(wa, wb, wc, wd, n, nsys)
		}
	})
}
