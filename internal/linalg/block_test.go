package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat5(rng *rand.Rand, diag float64) Mat5 {
	var m Mat5
	for i := range m {
		m[i] = rng.Float64()*2 - 1
	}
	for i := 0; i < BlockSize; i++ {
		m[i*BlockSize+i] += diag
	}
	return m
}

func TestMul5Identity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	id := Identity5()
	m := randMat5(rng, 0)
	left := Mul5(&id, &m)
	right := Mul5(&m, &id)
	if left != m || right != m {
		t.Error("identity multiplication failed")
	}
}

func TestMul5Associative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat5(rng, 0)
		b := randMat5(rng, 0)
		c := randMat5(rng, 0)
		ab := Mul5(&a, &b)
		bc := Mul5(&b, &c)
		l := Mul5(&ab, &c)
		r := Mul5(&a, &bc)
		for i := range l {
			if math.Abs(l[i]-r[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFactor5SolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMat5(rng, 6) // well conditioned
		var x Vec5
		for i := range x {
			x[i] = rng.Float64()*10 - 5
		}
		b := MulVec5(&m, &x)
		lu, err := Factor5(&m)
		if err != nil {
			return false
		}
		got := lu.Solve(&b)
		for i := range got {
			if math.Abs(got[i]-x[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFactor5RequiresPivoting(t *testing.T) {
	// Zero leading diagonal entry forces a row swap; the solve must
	// still succeed.
	m := Identity5()
	m[0] = 0
	m[1] = 1
	m[BlockSize] = 1
	m[BlockSize+1] = 0
	x := Vec5{1, 2, 3, 4, 5}
	b := MulVec5(&m, &x)
	lu, err := Factor5(&m)
	if err != nil {
		t.Fatalf("Factor5 failed: %v", err)
	}
	got := lu.Solve(&b)
	for i := range got {
		if math.Abs(got[i]-x[i]) > 1e-12 {
			t.Fatalf("solve with pivoting: got %v, want %v", got, x)
		}
	}
}

func TestFactor5Singular(t *testing.T) {
	var m Mat5 // all zeros
	if _, err := Factor5(&m); err == nil {
		t.Error("expected singular error")
	}
}

func TestSolveMat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMat5(rng, 6)
	b := randMat5(rng, 0)
	lu, err := Factor5(&a)
	if err != nil {
		t.Fatal(err)
	}
	x := lu.SolveMat(&b)
	ax := Mul5(&a, &x)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-10 {
			t.Fatalf("A·X != B at %d: %g vs %g", i, ax[i], b[i])
		}
	}
}

func TestSolveBlockTridiag(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 3, 7, 25} {
		a := make([]Mat5, n)
		b := make([]Mat5, n)
		c := make([]Mat5, n)
		x := make([]Vec5, n)
		d := make([]Vec5, n)
		for i := 0; i < n; i++ {
			a[i] = randMat5(rng, 0)
			c[i] = randMat5(rng, 0)
			b[i] = randMat5(rng, 12) // block diagonal dominance
			for k := range x[i] {
				x[i][k] = rng.Float64()*4 - 2
			}
		}
		// d = T x computed block-row-wise.
		for i := 0; i < n; i++ {
			v := MulVec5(&b[i], &x[i])
			if i > 0 {
				lo := MulVec5(&a[i], &x[i-1])
				for k := range v {
					v[k] += lo[k]
				}
			}
			if i < n-1 {
				hi := MulVec5(&c[i], &x[i+1])
				for k := range v {
					v[k] += hi[k]
				}
			}
			d[i] = v
		}
		ws := NewBlockTridiagWorkspace(n)
		if err := SolveBlockTridiag(ws, a, b, c, d); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			for k := 0; k < BlockSize; k++ {
				if math.Abs(d[i][k]-x[i][k]) > 1e-8 {
					t.Fatalf("n=%d block %d comp %d: got %g, want %g", n, i, k, d[i][k], x[i][k])
				}
			}
		}
	}
}

func TestSolveBlockTridiagErrors(t *testing.T) {
	ws := NewBlockTridiagWorkspace(2)
	zero := make([]Mat5, 2)
	d := make([]Vec5, 2)
	if err := SolveBlockTridiag(ws, zero, zero, zero, d); err == nil {
		t.Error("singular block system should return error")
	}
	if err := SolveBlockTridiag(ws, nil, nil, nil, nil); err != nil {
		t.Errorf("empty system: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths should panic")
		}
	}()
	_ = SolveBlockTridiag(ws, zero[:1], zero, zero, d)
}

func TestAddScaled5(t *testing.T) {
	a := Identity5()
	b := Identity5()
	c := AddScaled5(&a, 2, &b)
	for i := 0; i < BlockSize; i++ {
		for j := 0; j < BlockSize; j++ {
			want := 0.0
			if i == j {
				want = 3
			}
			if c[i*BlockSize+j] != want {
				t.Fatalf("AddScaled5[%d][%d] = %g, want %g", i, j, c[i*BlockSize+j], want)
			}
		}
	}
}
