package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// TestGoldenTables pins every -which selection against a golden file,
// so the numbers EXPERIMENTS.md quotes cannot drift without an
// explicit, reviewed `go test ./cmd/tables -update`.
func TestGoldenTables(t *testing.T) {
	cases := []struct {
		name, which string
		plot        bool
	}{
		{"table1", "1", false},
		{"table2", "2", false},
		{"table3", "3", false},
		{"table5", "5", false},
		{"fig1", "fig1", false},
		{"fig1_plot", "fig1", true},
		{"all", "all", false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, c.which, c.plot); err != nil {
				t.Fatalf("run(%q): %v", c.which, err)
			}
			golden := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatalf("update %s: %v", golden, err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read %s (run with -update to create): %v", golden, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("-which %s output drifted from %s\ngot:\n%s\nwant:\n%s",
					c.which, golden, buf.Bytes(), want)
			}
		})
	}
}

// TestRunUnknownSelection: a bad -which is an error, not silence.
func TestRunUnknownSelection(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "4", false); err == nil {
		t.Fatal("run(\"4\") succeeded; the paper has no Table 4 and the tool must say so")
	}
}

// TestAllComposesSelections: -which all contains each individual
// table's output verbatim.
func TestAllComposesSelections(t *testing.T) {
	var all bytes.Buffer
	if err := run(&all, "all", false); err != nil {
		t.Fatal(err)
	}
	for _, which := range []string{"1", "2", "3", "5", "fig1"} {
		var one bytes.Buffer
		if err := run(&one, which, false); err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(all.Bytes(), one.Bytes()) {
			t.Errorf("-which all does not contain -which %s output", which)
		}
	}
}
