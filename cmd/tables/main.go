// Command tables prints the paper's analytical tables and the Figure 1
// speedup curves: Table 1 (minimum work per parallelized loop), Table 2
// (available work per synchronization event), Table 3 (predicted
// stair-step speedup for 15 units of parallelism), Table 5 (systems
// used in tuning) and the Figure 1 series.
//
// Usage:
//
//	tables [-which all|1|2|3|5|fig1] [-plot]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/plot"
)

func main() {
	which := flag.String("which", "all", "which table to print: all, 1, 2, 3, 5, fig1")
	draw := flag.Bool("plot", false, "render Figure 1 as an ASCII chart")
	flag.Parse()

	if err := run(os.Stdout, *which, *draw); err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(2)
	}
}

// run writes the selected tables to w. All output goes through w so
// the golden-file tests can pin the published numbers — the tables
// EXPERIMENTS.md quotes cannot drift silently.
func run(w io.Writer, which string, draw bool) error {
	switch which {
	case "all":
		table1(w)
		fmt.Fprintln(w)
		table2(w)
		fmt.Fprintln(w)
		table3(w)
		fmt.Fprintln(w)
		table5(w)
		fmt.Fprintln(w)
		figure1(w, draw)
	case "1":
		table1(w)
	case "2":
		table2(w)
	case "3":
		table3(w)
	case "5":
		table5(w)
	case "fig1":
		figure1(w, draw)
	default:
		return fmt.Errorf("unknown selection %q", which)
	}
	return nil
}

func table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1. Minimum work (cycles) per parallelized loop for <=1% synchronization overhead")
	fmt.Fprintf(w, "%-12s", "procs")
	for _, sc := range model.Table1SyncCosts {
		fmt.Fprintf(w, " %20s", fmt.Sprintf("sync=%.0f", sc))
	}
	fmt.Fprintln(w)
	t := model.Table1()
	for i, p := range model.Table1Procs {
		fmt.Fprintf(w, "%-12d", p)
		for _, work := range t[i] {
			fmt.Fprintf(w, " %20.0f", work)
		}
		fmt.Fprintln(w)
	}
}

func table2(w io.Writer) {
	fmt.Fprintln(w, "Table 2. Available work (cycles) per synchronization event, 1-million grid point zone")
	fmt.Fprintf(w, "%-14s %-34s %14s %14s %14s\n", "problem", "loop", "10 cyc/pt", "100 cyc/pt", "1000 cyc/pt")
	for _, r := range model.Table2() {
		fmt.Fprintf(w, "%-14s %-34s %14.0f %14.0f %14.0f\n",
			fmt.Sprintf("%s %v", r.Problem, r.Dims), r.Label, r.Work[0], r.Work[1], r.Work[2])
	}
}

func table3(w io.Writer) {
	fmt.Fprintln(w, "Table 3. Predicted speedup for a loop with 15 units of parallelism")
	fmt.Fprintf(w, "%-14s %-28s %s\n", "processors", "max units per processor", "predicted speedup")
	for _, r := range model.Table3() {
		procs := fmt.Sprintf("%d", r.ProcsLo)
		if r.ProcsHi != r.ProcsLo {
			procs = fmt.Sprintf("%d-%d", r.ProcsLo, r.ProcsHi)
		}
		fmt.Fprintf(w, "%-14s %-28d %.3f\n", procs, r.MaxUnits, r.Speedup)
	}
}

func table5(w io.Writer) {
	fmt.Fprintln(w, "Table 5. Systems used in tuning/parallelizing the RISC-optimized shared memory version of F3D")
	for _, s := range machine.TuningSystems() {
		fmt.Fprintf(w, "  %-8s %s\n", s.Vendor, s.Detail)
	}
}

func figure1(w io.Writer, draw bool) {
	fmt.Fprintln(w, "Figure 1. Predicted speedup for loops with various levels of parallelism")
	if draw {
		series := model.Figure1Series()
		var ps []plot.Series
		for i, n := range model.Figure1Parallelism {
			ps = append(ps, plot.Series{Name: fmt.Sprintf("N=%d units of parallelism", n), Y: series[i]})
		}
		fmt.Fprint(w, plot.Render("predicted speedup vs processors", plot.XRange(model.Figure1MaxProcs), ps, 100, 26))
		return
	}
	fmt.Fprintf(w, "%6s", "procs")
	for _, n := range model.Figure1Parallelism {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("N=%d", n))
	}
	fmt.Fprintln(w)
	series := model.Figure1Series()
	for p := 1; p <= model.Figure1MaxProcs; p++ {
		fmt.Fprintf(w, "%6d", p)
		for i := range series {
			fmt.Fprintf(w, " %8.3f", series[i][p-1])
		}
		fmt.Fprintln(w)
	}
}
