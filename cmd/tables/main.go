// Command tables prints the paper's analytical tables and the Figure 1
// speedup curves: Table 1 (minimum work per parallelized loop), Table 2
// (available work per synchronization event), Table 3 (predicted
// stair-step speedup for 15 units of parallelism), Table 5 (systems
// used in tuning) and the Figure 1 series.
//
// Usage:
//
//	tables [-which all|1|2|3|5|fig1] [-plot]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/plot"
)

func main() {
	which := flag.String("which", "all", "which table to print: all, 1, 2, 3, 5, fig1")
	draw := flag.Bool("plot", false, "render Figure 1 as an ASCII chart")
	flag.Parse()
	drawFig1 = *draw

	switch *which {
	case "all":
		table1()
		fmt.Println()
		table2()
		fmt.Println()
		table3()
		fmt.Println()
		table5()
		fmt.Println()
		figure1()
	case "1":
		table1()
	case "2":
		table2()
	case "3":
		table3()
	case "5":
		table5()
	case "fig1":
		figure1()
	default:
		fmt.Fprintf(os.Stderr, "tables: unknown selection %q\n", *which)
		os.Exit(2)
	}
}

func table1() {
	fmt.Println("Table 1. Minimum work (cycles) per parallelized loop for <=1% synchronization overhead")
	fmt.Printf("%-12s", "procs")
	for _, sc := range model.Table1SyncCosts {
		fmt.Printf(" %20s", fmt.Sprintf("sync=%.0f", sc))
	}
	fmt.Println()
	t := model.Table1()
	for i, p := range model.Table1Procs {
		fmt.Printf("%-12d", p)
		for _, w := range t[i] {
			fmt.Printf(" %20.0f", w)
		}
		fmt.Println()
	}
}

func table2() {
	fmt.Println("Table 2. Available work (cycles) per synchronization event, 1-million grid point zone")
	fmt.Printf("%-14s %-34s %14s %14s %14s\n", "problem", "loop", "10 cyc/pt", "100 cyc/pt", "1000 cyc/pt")
	for _, r := range model.Table2() {
		fmt.Printf("%-14s %-34s %14.0f %14.0f %14.0f\n",
			fmt.Sprintf("%s %v", r.Problem, r.Dims), r.Label, r.Work[0], r.Work[1], r.Work[2])
	}
}

func table3() {
	fmt.Println("Table 3. Predicted speedup for a loop with 15 units of parallelism")
	fmt.Printf("%-14s %-28s %s\n", "processors", "max units per processor", "predicted speedup")
	for _, r := range model.Table3() {
		procs := fmt.Sprintf("%d", r.ProcsLo)
		if r.ProcsHi != r.ProcsLo {
			procs = fmt.Sprintf("%d-%d", r.ProcsLo, r.ProcsHi)
		}
		fmt.Printf("%-14s %-28d %.3f\n", procs, r.MaxUnits, r.Speedup)
	}
}

func table5() {
	fmt.Println("Table 5. Systems used in tuning/parallelizing the RISC-optimized shared memory version of F3D")
	for _, s := range machine.TuningSystems() {
		fmt.Printf("  %-8s %s\n", s.Vendor, s.Detail)
	}
}

var drawFig1 bool

func figure1() {
	fmt.Println("Figure 1. Predicted speedup for loops with various levels of parallelism")
	if drawFig1 {
		series := model.Figure1Series()
		var ps []plot.Series
		for i, n := range model.Figure1Parallelism {
			ps = append(ps, plot.Series{Name: fmt.Sprintf("N=%d units of parallelism", n), Y: series[i]})
		}
		fmt.Print(plot.Render("predicted speedup vs processors", plot.XRange(model.Figure1MaxProcs), ps, 100, 26))
		return
	}
	fmt.Printf("%6s", "procs")
	for _, n := range model.Figure1Parallelism {
		fmt.Printf(" %8s", fmt.Sprintf("N=%d", n))
	}
	fmt.Println()
	series := model.Figure1Series()
	for p := 1; p <= model.Figure1MaxProcs; p++ {
		fmt.Printf("%6d", p)
		for i := range series {
			fmt.Printf(" %8.3f", series[i][p-1])
		}
		fmt.Println()
	}
}
