// Command perfsim reproduces the paper's measured-performance results
// on the simulated SMP models: Table 4 (time steps/hour and delivered
// MFLOPS for the 1-million and 59-million grid point cases on the SUN
// HPC 10000 and SGI Origin 2000) and the Figure 2 / Figure 3 sweeps.
//
// Usage:
//
//	perfsim [-which all|table4|fig2|fig3] [-plateaus] [-plot] [-compare]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/plot"
	"repro/internal/sim"
)

func main() {
	which := flag.String("which", "all", "what to print: all, table4, fig2, fig3")
	plateaus := flag.Bool("plateaus", false, "also report flat (stair-step plateau) regions")
	draw := flag.Bool("plot", false, "render the figures as ASCII charts instead of tables")
	compare := flag.Bool("compare", false, "print the paper's Table 4 values next to the simulated ones")
	flag.Parse()
	compareTable4 = *compare

	switch *which {
	case "all":
		table4()
		fmt.Println()
		figure(2, sim.Figure2(), *plateaus, *draw)
		fmt.Println()
		figure(3, sim.Figure3(), *plateaus, *draw)
	case "table4":
		table4()
	case "fig2":
		figure(2, sim.Figure2(), *plateaus, *draw)
	case "fig3":
		figure(3, sim.Figure3(), *plateaus, *draw)
	default:
		fmt.Fprintf(os.Stderr, "perfsim: unknown selection %q\n", *which)
		os.Exit(2)
	}
}

var compareTable4 bool

func table4() {
	oneM, fiftyNineM := sim.Table4()
	if compareTable4 {
		paper1, paper59 := sim.PaperTable4()
		fmt.Println("Table 4, simulated vs paper (time steps/hour)")
		fmt.Printf("%6s | %12s %12s %7s | %12s %12s %7s\n",
			"procs", "SUN sim", "SUN paper", "ratio", "SGI sim", "SGI paper", "ratio")
		cmp := func(rows []sim.Table4Row, paper []sim.PaperTable4Row) {
			for i, r := range rows {
				p := paper[i]
				sunSim, sunPaper, sunRatio := "N/A", "N/A", ""
				if r.Sun != nil && p.SunSteps > 0 {
					sunSim = fmt.Sprintf("%.1f", r.Sun.StepsPerHour)
					sunPaper = fmt.Sprintf("%.1f", p.SunSteps)
					sunRatio = fmt.Sprintf("%.2f", r.Sun.StepsPerHour/p.SunSteps)
				}
				fmt.Printf("%6d | %12s %12s %7s | %12.1f %12.1f %7.2f\n",
					r.Procs, sunSim, sunPaper, sunRatio,
					r.Sgi.StepsPerHour, p.SgiSteps, r.Sgi.StepsPerHour/p.SgiSteps)
			}
		}
		cmp(oneM, paper1)
		fmt.Println()
		cmp(fiftyNineM, paper59)
		return
	}
	fmt.Println("Table 4. Simulated performance of the RISC-optimized shared memory version of F3D")
	fmt.Printf("%6s %10s | %14s %10s | %14s %10s\n",
		"procs", "Mpoints", "SUN steps/hr", "SUN MFLOPS", "SGI steps/hr", "SGI MFLOPS")
	print := func(rows []sim.Table4Row) {
		for _, r := range rows {
			sunSteps, sunMF := "N/A", "N/A"
			if r.Sun != nil {
				sunSteps = fmt.Sprintf("%.1f", r.Sun.StepsPerHour)
				sunMF = fmt.Sprintf("%.2e", r.Sun.MFLOPS)
			}
			fmt.Printf("%6d %10.2f | %14s %10s | %14.1f %10.2e\n",
				r.Procs, float64(r.Points)/1e6, sunSteps, sunMF, r.Sgi.StepsPerHour, r.Sgi.MFLOPS)
		}
	}
	print(oneM)
	fmt.Println()
	print(fiftyNineM)
}

func figure(num int, series []sim.FigureSeries, plateaus, draw bool) {
	caseName := "1-million"
	if num == 3 {
		caseName = "59-million"
	}
	fmt.Printf("Figure %d. Simulated F3D performance, %s grid point test case (time steps/hour)\n", num, caseName)
	maxP := 0
	for _, s := range series {
		if s.Machine.MaxProcs > maxP {
			maxP = s.Machine.MaxProcs
		}
	}
	if draw {
		var ps []plot.Series
		for _, s := range series {
			y := make([]float64, maxP)
			for i := range y {
				if i < len(s.Results) {
					y[i] = s.Results[i].StepsPerHour
				} else {
					y[i] = math.NaN()
				}
			}
			ps = append(ps, plot.Series{Name: s.Machine.Name, Y: y})
		}
		fmt.Print(plot.Render("steps/hour vs processors", plot.XRange(maxP), ps, 100, 24))
		reportPlateaus(series, plateaus)
		return
	}
	fmt.Printf("%6s", "procs")
	for _, s := range series {
		fmt.Printf(" %34s", s.Machine.Name)
	}
	fmt.Println()
	for p := 1; p <= maxP; p++ {
		fmt.Printf("%6d", p)
		for _, s := range series {
			if p <= len(s.Results) {
				fmt.Printf(" %34.1f", s.Results[p-1].StepsPerHour)
			} else {
				fmt.Printf(" %34s", "-")
			}
		}
		fmt.Println()
	}
	reportPlateaus(series, plateaus)
}

func reportPlateaus(series []sim.FigureSeries, on bool) {
	if !on {
		return
	}
	for _, s := range series {
		fmt.Printf("plateaus (%s): ", s.Machine.Name)
		for _, pl := range sim.FindPlateaus(s.Results, 0.01, 5) {
			fmt.Printf("[%d-%d] ", pl.Lo, pl.Hi)
		}
		fmt.Println()
	}
}
