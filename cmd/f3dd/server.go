package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/adapt"
	"repro/internal/cluster"
	"repro/internal/euler"
	"repro/internal/f3d"
	"repro/internal/model"
	"repro/internal/obs/analyze"
	"repro/internal/sched"
	"repro/internal/simclock"
)

// Submission limits: the daemon refuses jobs that would allocate
// unbounded memory or run effectively forever, instead of letting one
// request exhaust the host.
const (
	maxSteps       = 1_000_000
	maxDim         = 128
	maxCells       = 1 << 20
	maxPoints      = 1 << 20
	maxParallelism = 1 << 16
)

// serverConfig tunes the HTTP layer's fault handling. The clock is
// injectable so retry backoff is testable on virtual time.
type serverConfig struct {
	// clock times retry backoff. nil defaults to the real clock.
	clock simclock.Clock
	// submitRetries is how many times a queue-full submission is
	// retried in-handler before surfacing 429 to the client.
	submitRetries int
	// retryBackoff is the first retry's wait; it doubles per attempt.
	// <= 0 with retries enabled defaults to 50ms.
	retryBackoff time.Duration
	// jobTimeout, when positive, is the run deadline applied to
	// submissions that don't pick their own via timeout_sec.
	jobTimeout time.Duration
	// adapt, when non-nil, enables "adaptive" submissions and receives
	// the measured speedups their controllers observe (wire the same
	// MeasuredAllocator the scheduler grants from, so grant sizing
	// follows measurement instead of the model alone).
	adapt *adapt.MeasuredAllocator
	// node tags this daemon's trace events in merged fleet timelines
	// (the -node flag; the listen address by default).
	node string
	// autopar, when true, phase-traces every f3d submission and serves
	// evidence-driven plans on GET /jobs/{id}/plan; submissions may
	// then carry plan_from to rerun a case under a derived plan.
	autopar bool
	// autoparSyncCost overrides the planner's assumed cost of one
	// synchronization in cycles — the Table 1 column the budget
	// verdicts divide by. 0 keeps the model default (10k cycles).
	autoparSyncCost float64
}

func (c serverConfig) withDefaults() serverConfig {
	if c.clock == nil {
		c.clock = simclock.Real{}
	}
	if c.retryBackoff <= 0 {
		c.retryBackoff = 50 * time.Millisecond
	}
	return c
}

// server is the HTTP surface of the f3dd daemon. Every route is a thin
// translation between JSON and the scheduler: admission errors map to
// backpressure status codes (429 queue full after bounded in-handler
// retries, 503 draining) so clients can retry instead of piling work
// up inside the process, and terminal job states map to distinct
// result statuses (200 done, 500 failed, 504 timed out, 409 canceled).
type server struct {
	sched    *sched.Scheduler
	shards   *cluster.ShardServer
	adaptMgr *adapt.Manager
	plans    *planState // nil unless -autopar
	cfg      serverConfig
	mux      *http.ServeMux
}

func newServer(s *sched.Scheduler, cfg serverConfig) *server {
	sv := &server{
		sched:    s,
		shards:   cluster.NewShardServer(cluster.NewHost()),
		adaptMgr: adapt.NewManager(),
		cfg:      cfg.withDefaults(),
		mux:      http.NewServeMux(),
	}
	if sv.cfg.autopar {
		sv.plans = newPlanState(analyze.Config{SyncCostCycles: sv.cfg.autoparSyncCost})
	}
	sv.mux.HandleFunc("POST /jobs", sv.handleSubmit)
	sv.mux.HandleFunc("GET /jobs", sv.handleList)
	sv.mux.HandleFunc("GET /jobs/{id}", sv.handleJob)
	sv.mux.HandleFunc("GET /jobs/{id}/adapt", sv.handleAdapt)
	sv.mux.HandleFunc("GET /jobs/{id}/plan", sv.handlePlan)
	sv.mux.HandleFunc("GET /jobs/{id}/result", sv.handleResult)
	sv.mux.HandleFunc("POST /jobs/{id}/cancel", sv.handleCancel)
	sv.mux.HandleFunc("DELETE /jobs/{id}", sv.handleCancel)
	sv.mux.HandleFunc("GET /metrics", sv.handleMetrics)
	sv.mux.HandleFunc("GET /metrics.json", sv.handleMetricsJSON)
	sv.mux.HandleFunc("GET /trace", sv.handleTrace)
	sv.mux.HandleFunc("GET /trace/stream", sv.handleTraceStream)
	sv.mux.HandleFunc("POST /trace/enable", sv.handleTraceEnable)
	sv.mux.HandleFunc("GET /analyze", sv.handleAnalyze)
	sv.mux.HandleFunc("GET /dash", sv.handleDash)
	sv.mux.HandleFunc("GET /healthz", sv.handleHealthz)
	sv.mux.Handle("POST /shards/", sv.shards)
	// Shard-step and exchange handling report into the scheduler's
	// tracer under this daemon's node tag, so a cluster coordinator's
	// collector can attribute lockstep steps to it.
	sv.shards.Host().SetObs(sv.cfg.node, s.Tracer())
	sv.registerObsMetrics()
	return sv
}

func (sv *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sv.mux.ServeHTTP(w, r)
}

// submitRequest is the POST /jobs body. Kind selects the job type;
// the remaining fields apply per kind (unused ones are ignored by the
// other kinds' builders but rejected if unknown to all).
type submitRequest struct {
	Kind string `json:"kind"` // "synthetic", "f3d", "euler" or "adaptive"
	Name string `json:"name"`
	// Steps is the number of time steps (f3d), sweeps (euler) or
	// profile repetitions (synthetic). Default 10.
	Steps int `json:"steps"`

	// synthetic: one parallel loop class of work_cycles spread over
	// parallelism units with sync_events regions per step, plus
	// serial_cycles of unparallelized work. work_scale converts cycles
	// to spin iterations (default 1).
	Parallelism  int     `json:"parallelism"`
	WorkCycles   float64 `json:"work_cycles"`
	SerialCycles float64 `json:"serial_cycles"`
	SyncEvents   int     `json:"sync_events"`
	WorkScale    float64 `json:"work_scale"`

	// f3d: zone dimensions "JxKxL" and initial pulse amplitude.
	Dims  string  `json:"dims"`
	Pulse float64 `json:"pulse"`

	// euler: characteristic-sweep batch size.
	Points int `json:"points"`

	// adaptive: seed of the deterministic ragged cost surface the
	// feedback controller optimizes (parallelism sets the loop length,
	// work_scale the per-iteration spin cost). Needs the daemon
	// started with -adapt.
	Seed int64 `json:"seed"`

	// TimeoutSec, when positive, is this job's run deadline in
	// seconds; negative opts out of any deadline. Zero inherits the
	// daemon's -job-timeout default.
	TimeoutSec float64 `json:"timeout_sec"`

	// PlanFrom (f3d, needs -autopar) reruns under the plan derived
	// from the named job's phase trace: the new job's step shape is
	// the lowered plan, and dims/pulse/steps default to the source
	// job's, so run N's evidence reconfigures run N+1.
	PlanFrom uint64 `json:"plan_from"`
}

// buildJob validates a submission and constructs the scheduler job.
func (sv *server) buildJob(req *submitRequest) (sched.Job, error) {
	if req.Steps == 0 {
		req.Steps = 10
	}
	if req.Steps < 1 || req.Steps > maxSteps {
		return nil, fmt.Errorf("steps must be in [1, %d], got %d", maxSteps, req.Steps)
	}
	kind := strings.ToLower(req.Kind)
	if req.Name == "" {
		req.Name = kind
	}
	switch kind {
	case "synthetic":
		if req.Parallelism == 0 {
			req.Parallelism = 8
		}
		if req.Parallelism < 1 || req.Parallelism > maxParallelism {
			return nil, fmt.Errorf("parallelism must be in [1, %d], got %d", maxParallelism, req.Parallelism)
		}
		if req.WorkCycles == 0 {
			req.WorkCycles = 1e6
		}
		if req.WorkCycles < 0 || req.SerialCycles < 0 {
			return nil, fmt.Errorf("work_cycles and serial_cycles must be >= 0")
		}
		if req.SyncEvents < 1 {
			req.SyncEvents = 1
		}
		if req.WorkScale == 0 {
			req.WorkScale = 1
		}
		if req.WorkScale < 0 {
			return nil, fmt.Errorf("work_scale must be > 0, got %g", req.WorkScale)
		}
		p := model.StepProfile{
			Loops: []model.LoopClass{{
				Name:        "loop",
				WorkCycles:  req.WorkCycles,
				Parallelism: req.Parallelism,
				SyncEvents:  req.SyncEvents,
			}},
			SerialCycles: req.SerialCycles,
		}
		return sched.NewSyntheticJob(req.Name, p, req.Steps, req.WorkScale), nil
	case "f3d":
		if req.PlanFrom != 0 {
			return sv.applyPlanFrom(req)
		}
		return sv.buildF3D(req)
	case "euler":
		if req.Points == 0 {
			req.Points = 1024
		}
		if req.Points < 1 || req.Points > maxPoints {
			return nil, fmt.Errorf("points must be in [1, %d], got %d", maxPoints, req.Points)
		}
		return euler.NewSweepJob(req.Name, req.Points, req.Steps), nil
	case "adaptive":
		if sv.cfg.adapt == nil {
			return nil, fmt.Errorf("adaptive jobs need the daemon started with -adapt")
		}
		if req.Parallelism == 0 {
			req.Parallelism = 96
		}
		if req.Parallelism < 1 || req.Parallelism > maxParallelism {
			return nil, fmt.Errorf("parallelism must be in [1, %d], got %d", maxParallelism, req.Parallelism)
		}
		if req.WorkScale == 0 {
			req.WorkScale = 200
		}
		if req.WorkScale < 0 {
			return nil, fmt.Errorf("work_scale must be > 0, got %g", req.WorkScale)
		}
		return adapt.NewLoopJob(req.Name, req.Parallelism, req.Steps, req.WorkScale,
			req.Seed, sv.sched.Procs(), sv.cfg.adapt, sv.cfg.clock)
	default:
		return nil, fmt.Errorf("unknown kind %q (want synthetic, f3d, euler or adaptive)", req.Kind)
	}
}

// parseDims parses "JxKxL" with per-dimension and total-size limits.
func parseDims(s string) (j, k, l int, err error) {
	if s == "" {
		return 0, 0, 0, fmt.Errorf("f3d jobs need dims (e.g. \"33x25x21\")")
	}
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("dims must be JxKxL, got %q", s)
	}
	var d [3]int
	for i, p := range parts {
		d[i], err = strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return 0, 0, 0, fmt.Errorf("dims must be JxKxL, got %q", s)
		}
		if d[i] < 1 || d[i] > maxDim {
			return 0, 0, 0, fmt.Errorf("each dimension must be in [1, %d], got %d", maxDim, d[i])
		}
	}
	if d[0]*d[1]*d[2] > maxCells {
		return 0, 0, 0, fmt.Errorf("zone too large: %dx%dx%d exceeds %d cells", d[0], d[1], d[2], maxCells)
	}
	return d[0], d[1], d[2], nil
}

func (sv *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if _, err := dec.Token(); err != io.EOF {
		httpError(w, http.StatusBadRequest, "bad request body: trailing data after JSON object")
		return
	}
	job, err := sv.buildJob(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	opts := sched.SubmitOptions{Timeout: sv.cfg.jobTimeout}
	switch {
	case req.TimeoutSec > 0:
		opts.Timeout = time.Duration(req.TimeoutSec * float64(time.Second))
	case req.TimeoutSec < 0:
		opts.Timeout = -1
	}
	h, err := sv.submitWithRetry(r, job, opts)
	switch {
	case errors.Is(err, sched.ErrQueueFull):
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, sched.ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Client went away mid-backoff; nobody is reading the reply.
		httpError(w, statusClientClosedRequest, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if lj, ok := job.(*adapt.LoopJob); ok {
		sv.adaptMgr.Register(h.ID(), lj.Controller())
	}
	if fj, ok := job.(*f3d.Job); ok && sv.plans != nil {
		sv.plans.register(h.ID(), req, fj)
	}
	writeJSON(w, http.StatusAccepted, h.Status())
}

// handleAdapt serves a job's adaptive-scheduling state: one controller
// status (current pick, convergence, decision log) per instrumented
// loop. Jobs without adaptive loops — or daemons run without -adapt —
// answer 404, so clients can feature-detect.
func (sv *server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	st, err := sv.sched.Job(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	loops, ok := sv.adaptMgr.Snapshot(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("job %d has no adaptive loops", id))
		return
	}
	writeJSON(w, http.StatusOK, adapt.JobAdapt{
		ID:    id,
		Name:  st.Name,
		State: st.State.String(),
		Loops: loops,
	})
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// abandoned the request while we were still backing off.
const statusClientClosedRequest = 499

// submitWithRetry absorbs transient queue-full rejections with bounded
// exponential backoff before giving the client its 429. Draining is
// not transient — it surfaces immediately — and the client hanging up
// cancels the wait.
func (sv *server) submitWithRetry(r *http.Request, job sched.Job, opts sched.SubmitOptions) (*sched.Handle, error) {
	backoff := sv.cfg.retryBackoff
	for attempt := 0; ; attempt++ {
		h, err := sv.sched.SubmitWithOptions(job, opts)
		if err == nil || !errors.Is(err, sched.ErrQueueFull) || attempt >= sv.cfg.submitRetries {
			return h, err
		}
		select {
		case <-sv.cfg.clock.After(backoff):
			backoff *= 2
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
	}
}

func (sv *server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, sv.sched.Jobs())
}

func (sv *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	st, err := sv.sched.Job(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResult reports a job's outcome with the terminal state encoded
// in the HTTP status, so curl -f and retrying clients need no JSON
// parsing: 200 done, 500 failed, 504 timed out, 409 canceled, and 202
// while the job is still queued or running.
func (sv *server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	st, err := sv.sched.Job(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	code := http.StatusAccepted
	switch st.State {
	case sched.StateDone:
		code = http.StatusOK
	case sched.StateFailed:
		code = http.StatusInternalServerError
	case sched.StateTimedOut:
		code = http.StatusGatewayTimeout
	case sched.StateCanceled:
		code = http.StatusConflict
	}
	writeJSON(w, code, st)
}

func (sv *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	if err := sv.sched.Cancel(id); err != nil {
		// A finished job cannot be canceled: that is a state conflict,
		// not a missing resource.
		if errors.Is(err, sched.ErrTerminal) {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	st, err := sv.sched.Job(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// healthzReply is the GET /healthz body: a readiness snapshot a
// cluster coordinator (or a load balancer) can route on. Draining
// answers 503 so new work stops arriving, while the shard API stays
// mounted so an in-flight lockstep solve can still finish its steps.
type healthzReply struct {
	Status  string `json:"status"` // "ok" or "draining"
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	InUse   int    `json:"in_use"`
	Procs   int    `json:"procs"`
	Shards  int    `json:"shards"`
	// TraceTotal / TraceDropped are the tracer ring's lifetime
	// counters, so a trace collector can tell how far behind its
	// cursor is without a /trace round-trip.
	TraceTotal   uint64 `json:"trace_total"`
	TraceDropped uint64 `json:"trace_dropped"`
	// NowNs is the daemon's clock at reply time (UnixNano); a
	// coordinator estimates this daemon's clock offset from it and
	// the probe's round-trip midpoint.
	NowNs int64 `json:"now_ns"`
}

func (sv *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := sv.sched.Metrics()
	tr := sv.sched.Tracer()
	reply := healthzReply{
		Status:       "ok",
		Queued:       m.Queued,
		Running:      m.Running,
		InUse:        m.InUse,
		Procs:        m.Procs,
		Shards:       sv.shards.Host().ShardCount(),
		TraceTotal:   tr.Total(),
		TraceDropped: tr.Dropped(),
		NowNs:        sv.cfg.clock.Now().UnixNano(),
	}
	code := http.StatusOK
	if sv.sched.Draining() {
		reply.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, reply)
}

func jobID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id "+strconv.Quote(r.PathValue("id")))
		return 0, false
	}
	return id, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
