package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// The daemon's observability surface:
//
//	GET  /metrics       Prometheus text: scheduler counters/gauges,
//	                    grant-size histogram, tracer accounting
//	GET  /metrics.json  legacy JSON snapshot (sched.Metrics)
//	GET  /trace         JSONL dump of the sync-event trace ring
//	POST /trace/enable  {"enabled":bool,"reset":bool} toggle; empty
//	                    body enables
//
// Tracing ships disabled: every instrumentation site in parloop and
// sched then costs one atomic load. An operator turns it on for a
// profiling window, pulls /trace, and feeds the JSONL to
// internal/profile for the paper's ranked-loop workflow.

// registerObsMetrics adds the daemon-level tracer gauges to the
// scheduler's registry. GaugeFunc re-registration replaces, so
// rebuilding a server over one registry is safe.
func (sv *server) registerObsMetrics() {
	tr := sv.sched.Tracer()
	reg := sv.sched.Registry()
	reg.GaugeFunc("trace_enabled", "Whether the sync-event tracer is recording (0/1).", func() float64 {
		if tr.Enabled() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("trace_events", "Events currently held in the trace ring buffer.", func() float64 {
		return float64(tr.Len())
	})
	reg.GaugeFunc("trace_events_dropped", "Events overwritten in the ring before export.", func() float64 {
		return float64(tr.Dropped())
	})
}

// handleMetrics renders the registry in the Prometheus text exposition
// format. The counters are lock-free atomics and the derived gauges
// take the scheduler mutex themselves, so concurrent scrapes are safe
// at any load.
func (sv *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := sv.sched.Registry().WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// handleMetricsJSON is the pre-Prometheus JSON snapshot, kept for
// scripted clients and the test helpers.
func (sv *server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, sv.sched.Metrics())
}

// handleTrace streams the trace ring as JSONL, oldest event first.
func (sv *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = sv.sched.Tracer().WriteJSONL(w)
}

// traceEnableRequest is the POST /trace/enable body. An empty body
// means {"enabled": true}.
type traceEnableRequest struct {
	Enabled *bool `json:"enabled"`
	// Reset discards the ring's current contents before (or while)
	// toggling — the start of a clean profiling window.
	Reset bool `json:"reset"`
}

// traceStatus is the /trace/enable response.
type traceStatus struct {
	Enabled bool   `json:"enabled"`
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped"`
}

func (sv *server) handleTraceEnable(w http.ResponseWriter, r *http.Request) {
	var req traceEnableRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	tr := sv.sched.Tracer()
	if req.Reset {
		tr.Reset()
	}
	enable := req.Enabled == nil || *req.Enabled
	if enable {
		tr.Enable()
	} else {
		tr.Disable()
	}
	writeJSON(w, http.StatusOK, traceStatus{
		Enabled: tr.Enabled(),
		Events:  tr.Len(),
		Dropped: tr.Dropped(),
	})
}
