package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// The daemon's observability surface:
//
//	GET  /metrics       Prometheus text: scheduler counters/gauges,
//	                    grant-size histogram, tracer accounting
//	GET  /metrics.json  legacy JSON snapshot (sched.Metrics)
//	GET  /trace         JSONL dump of the sync-event trace ring;
//	                    ?since=<seq> resumes from a cursor, and the
//	                    X-Trace-Dropped / X-Trace-Next headers report
//	                    ring-wraparound losses and the next cursor
//	GET  /trace/stream  SSE live tail of the same ring, sharing the
//	                    ?since= cursor (and Last-Event-ID) semantics
//	GET  /analyze       trace-analysis report (internal/obs/analyze)
//	GET  /dash          self-contained HTML dashboard over the two
//	POST /trace/enable  {"enabled":bool,"reset":bool} toggle; empty
//	                    body enables
//
// Tracing ships disabled: every instrumentation site in parloop and
// sched then costs one atomic load. An operator turns it on for a
// profiling window, pulls /trace, and feeds the JSONL to
// internal/profile for the paper's ranked-loop workflow — or lets
// /analyze do the diagnosis server-side.

// registerObsMetrics adds the daemon-level tracer gauges to the
// scheduler's registry. GaugeFunc re-registration replaces, so
// rebuilding a server over one registry is safe.
func (sv *server) registerObsMetrics() {
	tr := sv.sched.Tracer()
	reg := sv.sched.Registry()
	reg.GaugeFunc("trace_enabled", "Whether the sync-event tracer is recording (0/1).", func() float64 {
		if tr.Enabled() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("trace_events", "Events currently held in the trace ring buffer.", func() float64 {
		return float64(tr.Len())
	})
	reg.GaugeFunc("trace_events_dropped", "Events overwritten in the ring before export.", func() float64 {
		return float64(tr.Dropped())
	})
}

// handleMetrics renders the registry in the Prometheus text exposition
// format. The counters are lock-free atomics and the derived gauges
// take the scheduler mutex themselves, so concurrent scrapes are safe
// at any load.
func (sv *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := sv.sched.Registry().WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// handleMetricsJSON is the pre-Prometheus JSON snapshot, kept for
// scripted clients and the test helpers.
func (sv *server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, sv.sched.Metrics())
}

// handleTrace streams the trace ring as JSONL, oldest event first.
// With ?since=<seq> only events at or after that sequence are
// returned (the cursor protocol shared with /trace/stream: after
// processing a batch, resume from the X-Trace-Next header value). If
// ring wraparound dropped events from the requested window, the first
// line is a synthetic trace_dropped marker and X-Trace-Dropped
// carries the count — the caveat that a fixed-capacity ring cannot
// answer arbitrarily old cursors exactly.
func (sv *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	since, ok := traceSince(w, r)
	if !ok {
		return
	}
	events, dropped := sv.sched.Tracer().EventsSince(since)
	next := obs.NextCursor(events, since)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Trace-Dropped", strconv.FormatUint(dropped, 10))
	w.Header().Set("X-Trace-Next", strconv.FormatUint(next, 10))
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return
		}
	}
}

// traceSince parses the ?since= cursor (0 when absent), replying 400
// on garbage.
func traceSince(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	s := r.URL.Query().Get("since")
	if s == "" {
		return 0, true
	}
	since, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad since cursor "+strconv.Quote(s))
		return 0, false
	}
	return since, true
}

// traceEnableRequest is the POST /trace/enable body. An empty body
// means {"enabled": true}.
type traceEnableRequest struct {
	Enabled *bool `json:"enabled"`
	// Reset discards the ring's current contents before (or while)
	// toggling — the start of a clean profiling window.
	Reset bool `json:"reset"`
}

// traceStatus is the /trace/enable response.
type traceStatus struct {
	Enabled bool   `json:"enabled"`
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped"`
}

func (sv *server) handleTraceEnable(w http.ResponseWriter, r *http.Request) {
	var req traceEnableRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	tr := sv.sched.Tracer()
	if req.Reset {
		tr.Reset()
	}
	enable := req.Enabled == nil || *req.Enabled
	if enable {
		tr.Enable()
	} else {
		tr.Disable()
	}
	writeJSON(w, http.StatusOK, traceStatus{
		Enabled: tr.Enabled(),
		Events:  tr.Len(),
		Dropped: tr.Dropped(),
	})
}
