package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/sched"
)

// testServer wires a scheduler into the HTTP handler and gives the
// tests a tiny JSON client. Everything goes through real HTTP.
type testServer struct {
	t  *testing.T
	s  *sched.Scheduler
	sv *server
	ts *httptest.Server
}

func newTestServer(t *testing.T, cfg sched.Config, scfg serverConfig) *testServer {
	t.Helper()
	s := sched.New(cfg)
	sv := newServer(s, scfg)
	ts := httptest.NewServer(sv)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return &testServer{t: t, s: s, sv: sv, ts: ts}
}

// do sends a request and decodes the JSON response into out (if
// non-nil), returning the status code.
func (ts *testServer) do(method, path string, body, out any) int {
	ts.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			ts.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.ts.URL+path, &buf)
	if err != nil {
		ts.t.Fatal(err)
	}
	resp, err := ts.ts.Client().Do(req)
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			ts.t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func (ts *testServer) metrics() sched.Metrics {
	ts.t.Helper()
	var m sched.Metrics
	if code := ts.do("GET", "/metrics.json", nil, &m); code != http.StatusOK {
		ts.t.Fatalf("GET /metrics.json = %d", code)
	}
	return m
}

// waitState polls a job until it reaches the wanted state.
func (ts *testServer) waitState(id uint64, want sched.State) sched.JobStatus {
	ts.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st sched.JobStatus
		if code := ts.do("GET", fmt.Sprintf("/jobs/%d", id), nil, &st); code != http.StatusOK {
			ts.t.Fatalf("GET /jobs/%d = %d", id, code)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			ts.t.Fatalf("job %d: state %v, want %v", id, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func onPlateau(t *testing.T, m, p int) {
	t.Helper()
	if p < 1 {
		t.Fatalf("granted %d processors", p)
	}
	if p > 1 && (m+p-1)/p == (m+p-2)/(p-1) {
		t.Errorf("grant %d for M=%d is off-plateau: ceil(M/P) == ceil(M/(P-1))", p, m)
	}
}

// TestTwoConcurrentJobsShareTheBudget is the end-to-end acceptance
// test: two jobs submitted over HTTP run concurrently, each on a
// stair-step plateau of its parallelism, and the processors granted
// never exceed the budget.
func TestTwoConcurrentJobsShareTheBudget(t *testing.T) {
	const procs = 4
	ts := newTestServer(t, sched.Config{Procs: procs, QueueDepth: 8}, serverConfig{})

	// Each job: M = 6, a couple thousand checkpointed steps of real
	// spinning, so both are observably running at once. On 4 processors
	// the scheduler grants the first the plateau at 3 (ceil(6/3) = 2
	// sweeps; a 4th processor would buy nothing) and the second the
	// remaining 1.
	submit := func(name string) sched.JobStatus {
		var st sched.JobStatus
		code := ts.do("POST", "/jobs", map[string]any{
			"kind":        "synthetic",
			"name":        name,
			"parallelism": 6,
			"steps":       2000,
			"work_cycles": 100000.0,
		}, &st)
		if code != http.StatusAccepted {
			t.Fatalf("POST /jobs = %d", code)
		}
		return st
	}
	a, b := submit("a"), submit("b")

	// Both were dispatched at submission; poll until one listing shows
	// them running concurrently, granted processors summing to at most
	// the budget, each grant on a plateau.
	deadline := time.Now().Add(60 * time.Second)
	var jobs []sched.JobStatus
	for {
		if code := ts.do("GET", "/jobs", nil, &jobs); code != http.StatusOK {
			t.Fatalf("GET /jobs = %d", code)
		}
		if len(jobs) != 2 {
			t.Fatalf("listed %d jobs, want 2", len(jobs))
		}
		running := 0
		for _, st := range jobs {
			if st.State == sched.StateRunning {
				running++
			}
			if st.State.Terminal() {
				t.Fatalf("job %d (%s) reached %v before both jobs were seen running together",
					st.ID, st.Name, st.State)
			}
		}
		if running == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never observed running concurrently")
		}
		time.Sleep(time.Millisecond)
	}
	total := 0
	for _, st := range jobs {
		onPlateau(t, st.Requested, st.Granted)
		total += st.Granted
	}
	if total > procs {
		t.Fatalf("concurrent grants total %d, exceeds budget %d", total, procs)
	}
	if jobs[0].Granted != 3 || jobs[1].Granted != 1 {
		t.Errorf("grants (%d, %d), want plateau packing (3, 1)", jobs[0].Granted, jobs[1].Granted)
	}

	sa := ts.waitState(a.ID, sched.StateDone)
	sb := ts.waitState(b.ID, sched.StateDone)
	for _, st := range []sched.JobStatus{sa, sb} {
		onPlateau(t, st.Requested, st.Granted)
		if st.SyncEvents == 0 && st.Granted > 1 {
			t.Errorf("job %d finished with grant %d but no sync events", st.ID, st.Granted)
		}
	}

	m := ts.metrics()
	if m.MaxInUse > m.Procs {
		t.Errorf("max_in_use %d exceeds budget %d", m.MaxInUse, m.Procs)
	}
	if m.InUse+m.Free != m.Procs {
		t.Errorf("in_use %d + free %d != procs %d", m.InUse, m.Free, m.Procs)
	}
	if m.Completed != 2 || m.Running != 0 || m.Queued != 0 {
		t.Errorf("metrics after both done: %+v", m)
	}
}

// TestSolverJobKindsOverHTTP submits one f3d job and one euler job and
// sees both through to completion.
func TestSolverJobKindsOverHTTP(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 3, QueueDepth: 8, Grow: true}, serverConfig{})

	var f3dJob, eulerJob sched.JobStatus
	if code := ts.do("POST", "/jobs", map[string]any{
		"kind": "f3d", "dims": "11x10x9", "steps": 2, "pulse": 0.05,
	}, &f3dJob); code != http.StatusAccepted {
		t.Fatalf("POST f3d job = %d", code)
	}
	if code := ts.do("POST", "/jobs", map[string]any{
		"kind": "euler", "points": 64, "steps": 2,
	}, &eulerJob); code != http.StatusAccepted {
		t.Fatalf("POST euler job = %d", code)
	}
	if f3dJob.Requested != 11 {
		t.Errorf("f3d job requested %d, want max zone dimension 11", f3dJob.Requested)
	}
	if eulerJob.Requested != 64 {
		t.Errorf("euler job requested %d, want points 64", eulerJob.Requested)
	}
	st := ts.waitState(f3dJob.ID, sched.StateDone)
	if st.SyncEvents == 0 {
		t.Error("f3d job completed with no sync events")
	}
	ts.waitState(eulerJob.ID, sched.StateDone)
}

// TestBackpressureAndCancelOverHTTP fills the queue and checks the 429
// backpressure signal, then cancels through the API.
func TestBackpressureAndCancelOverHTTP(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 1, QueueDepth: 1}, serverConfig{})

	long := map[string]any{
		"kind": "synthetic", "parallelism": 1,
		"steps": maxSteps, "work_cycles": 1000000.0,
	}
	var running, queued sched.JobStatus
	if code := ts.do("POST", "/jobs", long, &running); code != http.StatusAccepted {
		t.Fatalf("first POST = %d", code)
	}
	ts.waitState(running.ID, sched.StateRunning)
	if code := ts.do("POST", "/jobs", long, &queued); code != http.StatusAccepted {
		t.Fatalf("second POST = %d", code)
	}
	var errBody map[string]string
	if code := ts.do("POST", "/jobs", long, &errBody); code != http.StatusTooManyRequests {
		t.Fatalf("third POST = %d, want 429 (queue full); body %v", code, errBody)
	}
	if errBody["error"] == "" {
		t.Error("429 response carried no error message")
	}

	var st sched.JobStatus
	if code := ts.do("DELETE", fmt.Sprintf("/jobs/%d", queued.ID), nil, &st); code != http.StatusOK {
		t.Fatalf("DELETE queued job = %d", code)
	}
	ts.waitState(queued.ID, sched.StateCanceled)
	if code := ts.do("POST", fmt.Sprintf("/jobs/%d/cancel", running.ID), nil, &st); code != http.StatusOK {
		t.Fatalf("POST cancel running job = %d", code)
	}
	ts.waitState(running.ID, sched.StateCanceled)

	if m := ts.metrics(); m.Rejected != 1 || m.Canceled != 2 {
		t.Errorf("rejected %d canceled %d, want 1 and 2", m.Rejected, m.Canceled)
	}
}

func TestBadRequestsOverHTTP(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 1, QueueDepth: 1}, serverConfig{})

	cases := []struct {
		name string
		body map[string]any
	}{
		{"unknown kind", map[string]any{"kind": "fortran"}},
		{"unknown field", map[string]any{"kind": "synthetic", "bogus": 1}},
		{"bad steps", map[string]any{"kind": "synthetic", "steps": maxSteps + 1}},
		{"missing dims", map[string]any{"kind": "f3d"}},
		{"malformed dims", map[string]any{"kind": "f3d", "dims": "11x10"}},
		{"huge zone", map[string]any{"kind": "f3d", "dims": "128x128x128"}},
		{"bad points", map[string]any{"kind": "euler", "points": maxPoints + 1}},
	}
	for _, tc := range cases {
		var errBody map[string]string
		if code := ts.do("POST", "/jobs", tc.body, &errBody); code != http.StatusBadRequest {
			t.Errorf("%s: POST = %d, want 400 (body %v)", tc.name, code, errBody)
		}
	}

	if code := ts.do("GET", "/jobs/999", nil, &map[string]string{}); code != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", code)
	}
	if code := ts.do("GET", "/jobs/zork", nil, &map[string]string{}); code != http.StatusBadRequest {
		t.Errorf("GET malformed id = %d, want 400", code)
	}
	if code := ts.do("POST", "/jobs/999/cancel", nil, &map[string]string{}); code != http.StatusNotFound {
		t.Errorf("cancel unknown job = %d, want 404", code)
	}
	if code := ts.do("GET", "/healthz", nil, &healthzReply{}); code != http.StatusOK {
		t.Errorf("GET /healthz = %d, want 200", code)
	}
	if m := ts.metrics(); m.Submitted != 0 {
		t.Errorf("bad requests were admitted: submitted = %d", m.Submitted)
	}
}
