package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// The diagnosis surface: GET /analyze runs the trace-analysis engine
// over the current ring contents and returns the JSON report, and
// GET /trace/stream is the SSE live tail feeding the dashboard. Both
// read the same ring the JSONL dump does; analysis is a pure function
// of the snapshot, so concurrent requests are safe at any load.

// streamPollDefault is how often the SSE tail polls the ring for new
// events; ?poll_ms= overrides within [streamPollMin, streamPollMax].
const (
	streamPollDefault = 250 * time.Millisecond
	streamPollMin     = 10 * time.Millisecond
	streamPollMax     = 10 * time.Second
)

// handleAnalyze runs internal/obs/analyze over the trace ring.
// Optional query parameters tune the model: clock_ghz (ns→cycles),
// sync_cost_cycles (Table 1 column), budget (overhead fraction), and
// label stamps the report for later diffing.
func (sv *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var cfg analyze.Config
	q := r.URL.Query()
	for _, p := range []struct {
		name string
		dst  *float64
	}{
		{"clock_ghz", &cfg.ClockGHz},
		{"sync_cost_cycles", &cfg.SyncCostCycles},
		{"budget", &cfg.Budget},
	} {
		s := q.Get(p.name)
		if s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad %s %q (want a positive number)", p.name, s))
			return
		}
		*p.dst = v
	}
	// EventsSince(0) rather than Events(): the cursor read prepends
	// the drop marker when the ring has wrapped, so the report is
	// flagged Truncated instead of silently covering only the window.
	events, _ := sv.sched.Tracer().EventsSince(0)
	rep := analyze.Analyze(events, cfg)
	rep.Label = q.Get("label")
	writeJSON(w, http.StatusOK, rep)
}

// handleTraceStream serves the trace ring as a Server-Sent Events
// tail: one `data:` line per event (the JSONL object), with the
// event's sequence as the SSE id so EventSource reconnection resumes
// via Last-Event-ID. The explicit ?since= cursor wins over
// Last-Event-ID; with neither, the stream starts at the oldest held
// event. Drop markers are sent as `event: trace_dropped` without an
// id, so they never regress the client's cursor.
func (sv *server) handleTraceStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	cursor, ok := traceSince(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("since") == "" {
		if lastID := r.Header.Get("Last-Event-ID"); lastID != "" {
			id, err := strconv.ParseUint(lastID, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad Last-Event-ID "+strconv.Quote(lastID))
				return
			}
			cursor = id + 1
		}
	}
	poll := streamPollDefault
	if s := r.URL.Query().Get("poll_ms"); s != "" {
		ms, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad poll_ms "+strconv.Quote(s))
			return
		}
		poll = min(max(time.Duration(ms)*time.Millisecond, streamPollMin), streamPollMax)
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	tr := sv.sched.Tracer()
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		events, _ := tr.EventsSince(cursor)
		for _, e := range events {
			blob, err := json.Marshal(e)
			if err != nil {
				return
			}
			if e.Kind == obs.KindTraceDropped {
				if _, err := fmt.Fprintf(w, "event: trace_dropped\ndata: %s\n\n", blob); err != nil {
					return
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", e.Seq, blob); err != nil {
				return
			}
			cursor = e.Seq + 1
		}
		if len(events) > 0 {
			fl.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
