// Command f3dd is the solver job daemon: an HTTP front end over the
// space-sharing scheduler in internal/sched. It accepts solver jobs
// (F3D time stepping, euler characteristic sweeps, synthetic
// model.StepProfile workloads), queues them with backpressure, and
// packs them onto a fixed processor budget using the paper's
// stair-step rule — every grant sits on an efficiency plateau of the
// job's loop-level parallelism, never on the flat part of the stair
// where extra processors buy no speedup.
//
// Usage:
//
//	f3dd [-addr HOST:PORT] [-procs N] [-queue N]
//	     [-grow=false] [-shrink=false] [-adapt] [-drain-timeout D]
//	     [-job-timeout D] [-submit-retries N] [-retry-backoff D]
//
// Endpoints:
//
//	POST   /jobs             submit a job (JSON body; see server.go)
//	GET    /jobs             list all jobs
//	GET    /jobs/{id}        one job's status
//	GET    /jobs/{id}/adapt  adaptive-scheduling state: per-loop
//	                         controller status and decision log
//	                         (404 for jobs without adaptive loops)
//	GET    /jobs/{id}/plan   auto-parallelization plan derived from
//	                         the job's phase trace, with per-loop
//	                         machine-checkable rationale (404 unless
//	                         the daemon runs -autopar; 409 until the
//	                         job has traced evidence)
//	GET    /jobs/{id}/result outcome as HTTP status (200 done, 500
//	                         failed, 504 timed out, 409 canceled,
//	                         202 still in flight)
//	POST   /jobs/{id}/cancel cancel (DELETE /jobs/{id} is equivalent)
//	GET    /metrics          Prometheus text: counters, gauges, grant
//	                         histogram, tracer accounting
//	GET    /metrics.json     legacy JSON metrics snapshot
//	GET    /trace            sync-event trace ring as JSONL
//	POST   /trace/enable     toggle tracing ({"enabled":bool,
//	                         "reset":bool}; empty body enables)
//	GET    /healthz          readiness: queue depth, processors in
//	                         use, hosted shard count; 503 while
//	                         draining so coordinators stop routing
//	                         new work here
//	POST   /shards/create    cluster shard API: host one shard of a
//	POST   /shards/step      sharded multi-zone solve, driven in
//	POST   /shards/release   lockstep by f3dc (see internal/cluster)
//
// With -adapt the daemon accepts "adaptive" jobs — ragged loops
// re-scheduled per step by a live feedback controller (internal/adapt)
// — and sizes every grant from measured speedups instead of the
// stair-step model alone: the controllers feed a MeasuredAllocator
// that shrinks grants to lower plateaus when the observed speedup
// says the extra processors buy nothing.
//
// With -autopar every f3d submission runs phase-traced, and the
// daemon derives an evidence-driven auto-parallelization plan from
// the run's trace (internal/autopar/pipeline): GET /jobs/{id}/plan
// serves the per-loop decisions with their rationale, and a new
// submission carrying plan_from reruns the case with the plan lowered
// onto the solver's step shape — run N's evidence reconfigures run
// N+1 without changing the answer.
//
// Jobs may carry a run deadline: -job-timeout sets the default and a
// submission's timeout_sec overrides it (negative opts out). A job
// past its deadline is canceled, reported as timed-out, and its
// processors return to the pool. Queue-full submissions are retried
// -submit-retries times with doubling -retry-backoff before the
// client sees 429.
//
// On SIGINT/SIGTERM the daemon flips /healthz to 503 and drains the
// scheduler (waits for queued and running jobs up to -drain-timeout,
// refusing new submissions but still serving status reads and shard
// steps), then cancels whatever remains, closes the listener and
// exits.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/adapt"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/simclock"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	procs := flag.Int("procs", 0, "processor budget shared across jobs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "queued-job limit; submits beyond it get HTTP 429")
	grow := flag.Bool("grow", true, "grow running jobs to higher plateaus as the queue drains")
	shrink := flag.Bool("shrink", true, "shrink the largest job one plateau to admit queued work")
	adaptive := flag.Bool("adapt", false, "accept adaptive jobs and size grants from measured speedups")
	autopar := flag.Bool("autopar", false, "phase-trace f3d jobs and serve evidence-driven plans on /jobs/{id}/plan")
	autoparSync := flag.Float64("autopar-sync-cost", 0, "planner sync cost in cycles, a Table 1 column (0 = model default)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "max wait for in-flight jobs on shutdown")
	jobTimeout := flag.Duration("job-timeout", 0, "default run deadline per job (0 = none; timeout_sec overrides)")
	submitRetries := flag.Int("submit-retries", 3, "in-handler retries for queue-full submissions before 429")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "first retry wait; doubles per attempt")
	traceBuf := flag.Int("trace-buf", 65536, "sync-event trace ring capacity (events)")
	trace := flag.Bool("trace", false, "start with sync-event tracing enabled")
	node := flag.String("node", "", "node tag on this daemon's trace events (default: the listen address)")
	flag.Parse()
	if *node == "" {
		*node = *addr
	}

	tracer := obs.NewTracer(*traceBuf, simclock.Real{})
	if *trace {
		tracer.Enable()
	}
	schedCfg := sched.Config{
		Procs:         *procs,
		QueueDepth:    *queue,
		Grow:          *grow,
		ShrinkToAdmit: *shrink,
		Clock:         simclock.Real{},
		Tracer:        tracer,
		Metrics:       obs.NewRegistry(),
	}
	var alloc *adapt.MeasuredAllocator
	if *adaptive {
		alloc = adapt.NewMeasuredAllocator()
		schedCfg.Allocator = alloc
	}
	s := sched.New(schedCfg)
	srv := &http.Server{Addr: *addr, Handler: newServer(s, serverConfig{
		clock:           simclock.Real{},
		submitRetries:   *submitRetries,
		retryBackoff:    *retryBackoff,
		jobTimeout:      *jobTimeout,
		adapt:           alloc,
		node:            *node,
		autopar:         *autopar,
		autoparSyncCost: *autoparSync,
	})}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("f3dd: serving on %s (procs=%d queue=%d grow=%v shrink=%v)",
		*addr, s.Procs(), *queue, *grow, *shrink)

	select {
	case err := <-errc:
		log.Fatalf("f3dd: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us
	log.Printf("f3dd: signal received, draining (timeout %s)", *drainTimeout)

	// Drain the scheduler BEFORE shutting down HTTP: the listener
	// stays up through the drain so /healthz answers 503 "draining"
	// (coordinators stop routing here) and in-flight cluster solves
	// can still finish their lockstep shard steps.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		log.Printf("f3dd: drain: %v; canceling remaining jobs", err)
	}
	s.Close()
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("f3dd: http shutdown: %v", err)
	}
	m := s.Metrics()
	log.Printf("f3dd: exit: %d completed, %d failed, %d canceled, %d rejected, peak %d/%d procs",
		m.Completed, m.Failed, m.Canceled, m.Rejected, m.MaxInUse, m.Procs)
}
