package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/autopar/pipeline"
	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sched"
)

// -plan-out makes TestPlanE2E write the plan it derived as a JSON
// artifact, so CI can attach the machine-checkable rationale to the
// run.
var planOut = flag.String("plan-out", "", "write the E2E-derived plan JSON to this file")

// serialResiduals is the conformance reference: the residual history
// of a serial, unshaped solver on the same case.
func serialResiduals(t *testing.T, j, k, l, steps int, pulse float64) []float64 {
	t.Helper()
	s, err := f3d.NewCacheSolver(f3d.DefaultConfig(grid.Single(j, k, l)), f3d.CacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f3d.InitPulse(s, pulse)
	res := make([]float64, steps)
	for i := range res {
		res[i] = s.Step().Residual
	}
	return res
}

// TestPlanFeatureDetect: daemons without -autopar answer 404 from
// /plan (clients feature-detect, like /adapt) and reject plan_from
// submissions up front.
func TestPlanFeatureDetect(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 2}, serverConfig{})
	var st sched.JobStatus
	if code := ts.do("POST", "/jobs", map[string]any{
		"kind": "f3d", "name": "plain", "dims": "6x5x4", "steps": 1,
	}, &st); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	ts.waitState(st.ID, sched.StateDone)
	if code := ts.do("GET", fmt.Sprintf("/jobs/%d/plan", st.ID), nil, nil); code != http.StatusNotFound {
		t.Fatalf("GET /plan without -autopar = %d, want 404", code)
	}
	if code := ts.do("GET", "/jobs/99999/plan", nil, nil); code != http.StatusNotFound {
		t.Fatalf("GET /plan for unknown job = %d, want 404", code)
	}
	if code := ts.do("POST", "/jobs", map[string]any{
		"kind": "f3d", "plan_from": st.ID,
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("plan_from without -autopar = %d, want 400", code)
	}
}

// TestPlanNeedsTracedEvidence: -autopar without tracing enabled has
// no evidence to plan from — /plan answers 409 and a plan_from rerun
// is refused, rather than silently planning from nothing.
func TestPlanNeedsTracedEvidence(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 2}, serverConfig{autopar: true})
	var st sched.JobStatus
	if code := ts.do("POST", "/jobs", map[string]any{
		"kind": "f3d", "name": "untraced", "dims": "6x5x4", "steps": 1,
	}, &st); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	ts.waitState(st.ID, sched.StateDone)
	if code := ts.do("GET", fmt.Sprintf("/jobs/%d/plan", st.ID), nil, nil); code != http.StatusConflict {
		t.Fatalf("GET /plan with tracing off = %d, want 409", code)
	}
	if code := ts.do("POST", "/jobs", map[string]any{
		"kind": "f3d", "plan_from": st.ID,
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("plan_from with tracing off = %d, want 400", code)
	}
}

// TestPlanGoldenJSON pins the exact GET /jobs/{id}/plan wire format
// against testdata/plan.golden (refresh with -update). The plan is
// stored explicitly so the body is reproducible bit for bit;
// tracetool's plan subcommand renders this same shape.
func TestPlanGoldenJSON(t *testing.T) {
	s := sched.New(sched.Config{Procs: 4})
	defer s.Close()
	sv := newServer(s, serverConfig{autopar: true})
	hs := httptest.NewServer(sv)
	defer hs.Close()

	// A real f3d job anchors the ID, name and terminal state.
	job, err := sv.buildF3D(&submitRequest{Name: "golden", Dims: "6x5x4", Steps: 1, Pulse: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	sv.plans.register(h.ID(), submitRequest{Name: "golden", Dims: "6x5x4", Steps: 1, Pulse: 0.01}, job)
	if err := h.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}

	// One decision of every kind, with the rationale vocabulary the
	// planner emits.
	plan := &pipeline.Plan{
		Schema: pipeline.Schema,
		Source: "golden",
		Procs:  4,
		Loops: []pipeline.LoopPlan{
			{Loop: "golden/sweep-jk", Action: pipeline.Parallelize, Rationale: []pipeline.Fact{
				{Kind: pipeline.FactStatic, Loop: "golden/sweep-jk", Detail: "statically parallel"},
				{Kind: pipeline.FactBudget, Loop: "golden/sweep-jk", Detail: "work per sync clears Table 1 minimum", Value: 3.2},
			}},
			{Loop: "golden/rhs", Action: pipeline.Fission, ParallelParts: []string{"jk"}, SerialParts: []string{"l"}, Rationale: []pipeline.Fact{
				{Kind: pipeline.FactPart, Loop: "golden/rhs", Part: "l", Detail: "part not parallelizable"},
				{Kind: pipeline.FactBudget, Loop: "golden/rhs", Part: "jk", Detail: "fissioned part clears the budget", Value: 2.1},
			}},
			{Loop: "golden/sweep-l", Action: pipeline.Merge, Group: "step", Rationale: []pipeline.Fact{
				{Kind: pipeline.FactStatic, Loop: "golden/sweep-l", Detail: "statically parallel"},
				{Kind: pipeline.FactGroupBudget, Loop: "golden/sweep-l", Detail: "fused region clears the budget the loop misses alone", Value: 1.4},
			}},
			{Loop: "golden/bc", Action: pipeline.Serial, Rationale: []pipeline.Fact{
				{Kind: pipeline.FactBudget, Loop: "golden/bc", Detail: "too cheap to amortize a sync", Value: 0.05},
			}},
		},
	}
	if err := sv.plans.mgr.SetPlan(h.ID(), plan); err != nil {
		t.Fatal(err)
	}

	resp, err := hs.Client().Get(fmt.Sprintf("%s/jobs/%d/plan", hs.URL, h.ID()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /plan = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "plan.golden")
	if *update {
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatalf("update %s: %v", golden, err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", golden, err)
	}
	if string(body) != string(want) {
		t.Fatalf("GET /plan drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, body, want)
	}
}

// TestPlanE2E is the acceptance path for the auto-parallelization
// pipeline: a phase-traced run, a plan derived from its evidence over
// HTTP, a plan_from rerun with the plan lowered onto the solver's step
// shape, and the proof that the applied plan (which demotes at least
// one loop from the default all-parallel structure at this scale)
// reproduces the serial reference's residual history bitwise.
func TestPlanE2E(t *testing.T) {
	tr := obs.NewTracer(1<<16, nil)
	tr.Enable()
	// The sync cost is pinned absurdly high (the -autopar-sync-cost
	// knob) so the Table 1 budget verdict is deterministic — no loop
	// at this scale can amortize a 1e9-cycle barrier, whatever the
	// machine or instrumentation (-race) does to the timings.
	ts := newTestServer(t, sched.Config{Procs: 3, Tracer: tr},
		serverConfig{autopar: true, autoparSyncCost: 1e9})

	const (
		j, k, l = 12, 10, 9
		steps   = 4
		pulse   = 0.01
	)
	var st sched.JobStatus
	if code := ts.do("POST", "/jobs", map[string]any{
		"kind": "f3d", "name": "probe", "dims": fmt.Sprintf("%dx%dx%d", j, k, l),
		"steps": steps, "pulse": pulse,
	}, &st); code != http.StatusAccepted {
		t.Fatalf("submit probe = %d", code)
	}
	ts.waitState(st.ID, sched.StateDone)

	var jp pipeline.JobPlan
	if code := ts.do("GET", fmt.Sprintf("/jobs/%d/plan", st.ID), nil, &jp); code != http.StatusOK {
		t.Fatalf("GET /plan = %d", code)
	}
	if jp.ID != st.ID || jp.Name != "probe" || jp.State != "done" || jp.Plan == nil {
		t.Fatalf("plan identity: %+v", jp)
	}
	if len(jp.Plan.Loops) == 0 {
		t.Fatal("plan is empty")
	}
	demoted := 0
	for _, lp := range jp.Plan.Loops {
		if len(lp.Rationale) == 0 {
			t.Errorf("loop %q decided %q with no rationale", lp.Loop, lp.Action)
		}
		if lp.Action != pipeline.Parallelize {
			demoted++
		}
	}
	// Under the pinned sync cost the budget demotes every traced loop
	// from the default all-parallel structure — the changed decisions
	// the rerun applies.
	if demoted == 0 {
		t.Fatalf("plan changed no loop's decision: %+v", jp.Plan.Loops)
	}
	if *planOut != "" {
		body, err := json.MarshalIndent(jp, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(*planOut, body, 0o644); err != nil {
			t.Fatalf("write -plan-out: %v", err)
		}
	}

	// Rerun the case under the derived plan; dims/steps/pulse are
	// inherited from the source job.
	var st2 sched.JobStatus
	if code := ts.do("POST", "/jobs", map[string]any{
		"kind": "f3d", "name": "replay", "plan_from": st.ID,
	}, &st2); code != http.StatusAccepted {
		t.Fatalf("submit replay = %d", code)
	}
	ts.waitState(st2.ID, sched.StateDone)

	replay, ok := ts.sv.plans.job(st2.ID)
	if !ok || replay.Shape() == nil {
		t.Fatal("replay job carries no applied shape")
	}
	if got, def := replay.Shape().Load(), f3d.ShapeFromPhases(f3d.AllPhases(), false); got == def {
		t.Errorf("applied plan left the default step shape %+v", got)
	}

	// Headline conformance: both the traced probe and the plan-shaped
	// replay reproduce the serial reference bitwise.
	ref := serialResiduals(t, j, k, l, steps, pulse)
	for name, id := range map[string]uint64{"probe": st.ID, "replay": st2.ID} {
		job, ok := ts.sv.plans.job(id)
		if !ok {
			t.Fatalf("%s job not registered", name)
		}
		got := job.History().Residuals
		if len(got) != len(ref) {
			t.Fatalf("%s ran %d steps, want %d", name, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("%s step %d: residual %.17g, serial reference %.17g", name, i, got[i], ref[i])
			}
		}
	}
}
