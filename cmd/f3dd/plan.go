package main

import (
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/autopar/pipeline"
	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/obs/analyze"
)

// buildF3D constructs an f3d cache-solver job from a submission. Under
// -autopar the job is phase-traced, so its run leaves per-phase loops
// in the daemon trace for the planner.
func (sv *server) buildF3D(req *submitRequest) (*f3d.Job, error) {
	j, k, l, err := parseDims(req.Dims)
	if err != nil {
		return nil, err
	}
	cfg := f3d.DefaultConfig(grid.Single(j, k, l))
	job, err := f3d.NewJob(req.Name, cfg, req.Steps, req.Pulse)
	if err != nil {
		return nil, err
	}
	if sv.plans != nil {
		job.WithPhaseTrace(req.Name)
	}
	return job, nil
}

// planState is the daemon's auto-parallelization bookkeeping (the
// -autopar flag): which f3d jobs were submitted phase-traced, their
// original submissions (so a plan_from rerun can inherit the case),
// and the per-job planner state in the pipeline manager.
type planState struct {
	mgr  *pipeline.Manager
	acfg analyze.Config

	mu    sync.Mutex
	jobs  map[uint64]submitRequest
	built map[uint64]*f3d.Job
}

func newPlanState(acfg analyze.Config) *planState {
	return &planState{
		mgr:   pipeline.NewManager(),
		acfg:  acfg,
		jobs:  map[uint64]submitRequest{},
		built: map[uint64]*f3d.Job{},
	}
}

// register enrolls a freshly submitted phase-traced f3d job. The job
// itself is retained so conformance checks can compare its recorded
// residual history against a serial reference.
func (ps *planState) register(id uint64, req submitRequest, job *f3d.Job) {
	ps.mgr.Register(id, req.Name, req.Name, pipeline.F3DStructure(req.Name),
		ps.acfg, pipeline.Config{})
	ps.mu.Lock()
	ps.jobs[id] = req
	ps.built[id] = job
	ps.mu.Unlock()
}

// source returns the original submission of a registered job.
func (ps *planState) source(id uint64) (submitRequest, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	req, ok := ps.jobs[id]
	return req, ok
}

// job returns the registered job object itself.
func (ps *planState) job(id uint64) (*f3d.Job, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	j, ok := ps.built[id]
	return j, ok
}

// applyPlanFrom resolves a plan_from submission: derive (or fetch) the
// source job's plan from the daemon trace and lower it onto the new
// job as its step shape. Dims/pulse/steps default to the source
// job's, so `{"kind":"f3d","plan_from":N}` reruns the same case under
// the plan.
func (sv *server) applyPlanFrom(req *submitRequest) (*f3d.Job, error) {
	if sv.plans == nil {
		return nil, fmt.Errorf("plan_from needs the daemon started with -autopar")
	}
	src, ok := sv.plans.source(req.PlanFrom)
	if !ok {
		return nil, fmt.Errorf("plan_from: job %d has no plan (not an -autopar f3d job)", req.PlanFrom)
	}
	plan, err := sv.plans.mgr.Plan(req.PlanFrom, sv.sched.Tracer().Events())
	if err != nil {
		return nil, fmt.Errorf("plan_from: job %d: %w", req.PlanFrom, err)
	}
	if req.Dims == "" {
		req.Dims = src.Dims
	}
	if req.Pulse == 0 {
		req.Pulse = src.Pulse
	}
	if req.Steps == 10 && src.Steps != 0 { // caller left the default
		req.Steps = src.Steps
	}
	job, err := sv.buildF3D(req)
	if err != nil {
		return nil, err
	}
	job.WithShape(pipeline.ShapeFromPlan(plan, src.Name))
	return job, nil
}

// handlePlan serves GET /jobs/{id}/plan: the per-loop plan derived
// from the job's phase trace, with machine-checkable rationale. Jobs
// not submitted under -autopar (or non-f3d jobs) answer 404 so
// clients can feature-detect, mirroring /adapt; a traced-out job whose
// evidence never made it into the ring answers 409.
func (sv *server) handlePlan(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	st, err := sv.sched.Job(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	if sv.plans == nil || !sv.plans.mgr.Registered(id) {
		httpError(w, http.StatusNotFound, fmt.Sprintf("job %d has no auto-parallelization plan", id))
		return
	}
	plan, err := sv.plans.mgr.Plan(id, sv.sched.Tracer().Events())
	if err != nil {
		if errors.Is(err, pipeline.ErrNoEvidence) {
			httpError(w, http.StatusConflict,
				fmt.Sprintf("job %d: %v (enable tracing and let the job run)", id, err))
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, pipeline.JobPlan{
		ID:    id,
		Name:  st.Name,
		State: st.State.String(),
		Plan:  plan,
	})
}
