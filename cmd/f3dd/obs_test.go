package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/sched"
)

// get fetches a path and returns status and raw body.
func (ts *testServer) get(path string) (int, string) {
	ts.t.Helper()
	resp, err := ts.ts.Client().Get(ts.ts.URL + path)
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		ts.t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestMetricsPrometheusGolden scrapes a fresh daemon and compares the
// full exposition against a golden text: names, HELP/TYPE headers,
// ordering and zero values are all part of the contract a Prometheus
// scraper (and our CI) relies on.
func TestMetricsPrometheusGolden(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 4, QueueDepth: 8}, serverConfig{})
	code, body := ts.get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	want := `# HELP sched_submitted_total Jobs admitted to the queue.
# TYPE sched_submitted_total counter
sched_submitted_total 0
# HELP sched_rejected_total Submissions refused (queue full or draining).
# TYPE sched_rejected_total counter
sched_rejected_total 0
# HELP sched_completed_total Jobs that finished successfully.
# TYPE sched_completed_total counter
sched_completed_total 0
# HELP sched_failed_total Jobs that returned an error or panicked.
# TYPE sched_failed_total counter
sched_failed_total 0
# HELP sched_canceled_total Jobs canceled while queued or running.
# TYPE sched_canceled_total counter
sched_canceled_total 0
# HELP sched_timed_out_total Jobs whose run deadline expired.
# TYPE sched_timed_out_total counter
sched_timed_out_total 0
# HELP sched_canceled_queued_total Canceled jobs that never received processors.
# TYPE sched_canceled_queued_total counter
sched_canceled_queued_total 0
# HELP sched_panics_total Failed jobs whose cause was a panic.
# TYPE sched_panics_total counter
sched_panics_total 0
# HELP sched_resizes_total Grant resizes applied at job checkpoints.
# TYPE sched_resizes_total counter
sched_resizes_total 0
# HELP sched_preempts_total Shrink requests issued to admit queued work.
# TYPE sched_preempts_total counter
sched_preempts_total 0
# HELP sched_done_sync_events_total Synchronization events of finished jobs' teams.
# TYPE sched_done_sync_events_total counter
sched_done_sync_events_total 0
# HELP sched_max_inuse_procs High-water mark of processors in use.
# TYPE sched_max_inuse_procs gauge
sched_max_inuse_procs 0
# HELP sched_grant_procs Processor counts at grant and applied resize (plateau occupancy).
# TYPE sched_grant_procs histogram
sched_grant_procs_bucket{le="1"} 0
sched_grant_procs_bucket{le="2"} 0
sched_grant_procs_bucket{le="4"} 0
sched_grant_procs_bucket{le="8"} 0
sched_grant_procs_bucket{le="16"} 0
sched_grant_procs_bucket{le="32"} 0
sched_grant_procs_bucket{le="64"} 0
sched_grant_procs_bucket{le="128"} 0
sched_grant_procs_bucket{le="+Inf"} 0
sched_grant_procs_sum 0
sched_grant_procs_count 0
# HELP sched_procs Processor budget space-shared across jobs.
# TYPE sched_procs gauge
sched_procs 4
# HELP sched_free_procs Processors not accounted to any job.
# TYPE sched_free_procs gauge
sched_free_procs 4
# HELP sched_inuse_procs Processors accounted to running jobs (including pending grows).
# TYPE sched_inuse_procs gauge
sched_inuse_procs 0
# HELP sched_queue_depth Jobs admitted and waiting for processors.
# TYPE sched_queue_depth gauge
sched_queue_depth 0
# HELP sched_running_jobs Jobs currently holding processors.
# TYPE sched_running_jobs gauge
sched_running_jobs 0
# HELP sched_sync_events_total Synchronization events across finished and running jobs' teams.
# TYPE sched_sync_events_total gauge
sched_sync_events_total 0
# HELP trace_enabled Whether the sync-event tracer is recording (0/1).
# TYPE trace_enabled gauge
trace_enabled 0
# HELP trace_events Events currently held in the trace ring buffer.
# TYPE trace_events gauge
trace_events 0
# HELP trace_events_dropped Events overwritten in the ring before export.
# TYPE trace_events_dropped gauge
trace_events_dropped 0
`
	if body != want {
		t.Errorf("GET /metrics golden mismatch.\ngot:\n%s\nwant:\n%s", body, want)
	}
}

// TestMetricsReflectWork runs a job and checks the Prometheus view
// moves with it.
func TestMetricsReflectWork(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 4, QueueDepth: 8}, serverConfig{})
	var st sched.JobStatus
	if code := ts.do("POST", "/jobs", map[string]any{
		"kind": "synthetic", "parallelism": 4, "steps": 3, "work_cycles": 1000.0,
	}, &st); code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}
	ts.waitState(st.ID, sched.StateDone)

	_, body := ts.get("/metrics")
	for _, line := range []string{
		"sched_submitted_total 1",
		"sched_completed_total 1",
		`sched_grant_procs_bucket{le="4"} 1`,
		"sched_grant_procs_count 1",
		"sched_procs 4",
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("/metrics missing %q after a completed job:\n%s", line, body)
		}
	}
}

// TestTraceEndpoints drives the full tracing workflow over HTTP:
// enable, run a job, dump JSONL, disable with reset.
func TestTraceEndpoints(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 4, QueueDepth: 8}, serverConfig{})

	// Tracing starts disabled; a scrape says so.
	if _, body := ts.get("/metrics"); !strings.Contains(body, "trace_enabled 0\n") {
		t.Error("tracer reported enabled before POST /trace/enable")
	}
	var status traceStatus
	if code := ts.do("POST", "/trace/enable", nil, &status); code != http.StatusOK || !status.Enabled {
		t.Fatalf("POST /trace/enable = %d, status %+v", code, status)
	}

	var st sched.JobStatus
	if code := ts.do("POST", "/jobs", map[string]any{
		"kind": "synthetic", "name": "traced-job", "parallelism": 4, "steps": 2, "work_cycles": 1000.0,
	}, &st); code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}
	ts.waitState(st.ID, sched.StateDone)

	code, body := ts.get("/trace")
	if code != http.StatusOK {
		t.Fatalf("GET /trace = %d", code)
	}
	kinds := make(map[string]int)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("trace line %q is not JSON: %v", sc.Text(), err)
		}
		kinds[e["kind"].(string)]++
		if name, ok := e["name"].(string); ok && name != "traced-job" {
			t.Errorf("trace event for %q, want traced-job", name)
		}
	}
	if kinds["grant"] != 1 {
		t.Errorf("trace has %d grant events, want 1 (kinds: %v)", kinds["grant"], kinds)
	}
	if kinds["region_end"] == 0 {
		t.Errorf("trace has no region_end events (kinds: %v)", kinds)
	}

	// Disable with reset: ring drains and recording stops.
	off := false
	if code := ts.do("POST", "/trace/enable", map[string]any{"enabled": off, "reset": true}, &status); code != http.StatusOK {
		t.Fatalf("POST /trace/enable (off) = %d", code)
	}
	if status.Enabled || status.Events != 0 {
		t.Errorf("after disable+reset: %+v", status)
	}
	if _, body := ts.get("/trace"); strings.TrimSpace(body) != "" {
		t.Errorf("trace not empty after reset: %q", body)
	}

	// Unknown fields are rejected.
	var errBody map[string]string
	if code := ts.do("POST", "/trace/enable", map[string]any{"bogus": 1}, &errBody); code != http.StatusBadRequest {
		t.Errorf("POST /trace/enable with bogus field = %d, want 400", code)
	}
}

// TestConcurrentScrapes hammers every read endpoint while jobs run;
// with -race this is the proof the snapshot paths take no unlocked
// reads of scheduler state.
func TestConcurrentScrapes(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 4, QueueDepth: 16}, serverConfig{})
	var status traceStatus
	if code := ts.do("POST", "/trace/enable", nil, &status); code != http.StatusOK {
		t.Fatalf("POST /trace/enable = %d", code)
	}

	var ids []uint64
	for i := 0; i < 6; i++ {
		var st sched.JobStatus
		if code := ts.do("POST", "/jobs", map[string]any{
			"kind": "synthetic", "name": fmt.Sprintf("j%d", i),
			"parallelism": 4, "steps": 50, "work_cycles": 20000.0,
		}, &st); code != http.StatusAccepted {
			t.Fatalf("POST /jobs = %d", code)
		}
		ids = append(ids, st.ID)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				for _, p := range []string{"/metrics", "/metrics.json", "/trace", "/jobs"} {
					if code, _ := ts.get(p); code != http.StatusOK {
						t.Errorf("GET %s = %d", p, code)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, id := range ids {
		ts.waitState(id, sched.StateDone)
	}
}
