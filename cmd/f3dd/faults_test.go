package main

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/simclock"
)

// doRaw sends an arbitrary (possibly malformed) body, returning only
// the status code.
func (ts *testServer) doRaw(method, path, body string) int {
	ts.t.Helper()
	req, err := http.NewRequest(method, ts.ts.URL+path, strings.NewReader(body))
	if err != nil {
		ts.t.Fatal(err)
	}
	resp, err := ts.ts.Client().Do(req)
	if err != nil {
		ts.t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestMalformedBodiesOverHTTP: submissions that are not valid JSON at
// all (truncated, trailing garbage, wrong types) are 400s, never 500s,
// and admit nothing.
func TestMalformedBodiesOverHTTP(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 1, QueueDepth: 1}, serverConfig{})
	for _, body := range []string{
		"",
		"{",
		"not json",
		`{"kind": "synthetic"} trailing`,
		`{"kind": 42}`,
		`{"kind": "synthetic", "steps": "ten"}`,
	} {
		if code := ts.doRaw("POST", "/jobs", body); code != http.StatusBadRequest {
			t.Errorf("POST %q = %d, want 400", body, code)
		}
	}
	if m := ts.metrics(); m.Submitted != 0 {
		t.Errorf("malformed bodies were admitted: submitted = %d", m.Submitted)
	}
}

// TestSubmitRetryAbsorbsTransientQueueFull: with in-handler retries
// configured, a submission that first hits a full queue is admitted
// once the backlog clears during backoff — the client sees 202, never
// the transient 429. The backoff runs on the virtual clock, so the
// test controls time.
func TestSubmitRetryAbsorbsTransientQueueFull(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	ts := newTestServer(t, sched.Config{Procs: 1, QueueDepth: 1},
		serverConfig{clock: clk, submitRetries: 3, retryBackoff: time.Second})

	long := map[string]any{
		"kind": "synthetic", "parallelism": 1,
		"steps": maxSteps, "work_cycles": 1000000.0,
	}
	var running, queued sched.JobStatus
	if code := ts.do("POST", "/jobs", long, &running); code != http.StatusAccepted {
		t.Fatalf("first POST = %d", code)
	}
	ts.waitState(running.ID, sched.StateRunning)
	if code := ts.do("POST", "/jobs", long, &queued); code != http.StatusAccepted {
		t.Fatalf("second POST = %d", code)
	}

	// Third submission fills no slot: the handler parks in backoff on
	// the virtual clock.
	type result struct {
		code int
		st   sched.JobStatus
	}
	resc := make(chan result, 1)
	go func() {
		var st sched.JobStatus
		code := ts.do("POST", "/jobs", long, &st)
		resc <- result{code, st}
	}()
	deadline := time.Now().Add(30 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("retrying handler never parked on the clock")
		}
		time.Sleep(time.Millisecond)
	}
	// Free the queue slot, then let the backoff expire: the retry must
	// now be admitted.
	if err := ts.s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	ts.waitState(queued.ID, sched.StateCanceled)
	clk.Advance(time.Second)
	res := <-resc
	if res.code != http.StatusAccepted {
		t.Fatalf("retried POST = %d, want 202 after the queue cleared", res.code)
	}
	if err := ts.s.Cancel(res.st.ID); err != nil {
		t.Fatal(err)
	}
	ts.waitState(res.st.ID, sched.StateCanceled)
	if err := ts.s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
}

// TestDrainingReturns503: once the scheduler starts draining,
// submissions are refused with 503 immediately — no retry loop, the
// condition is not transient.
func TestDrainingReturns503(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 1, QueueDepth: 4},
		serverConfig{submitRetries: 5, retryBackoff: time.Hour})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ts.s.Drain(ctx)
	deadline := time.Now().Add(10 * time.Second)
	for {
		code := ts.do("POST", "/jobs", map[string]any{"kind": "euler", "points": 8}, nil)
		if code == http.StatusServiceUnavailable {
			break
		}
		if code != http.StatusAccepted {
			t.Fatalf("POST while draining = %d, want 503 (or a 202 race before drain lands)", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never took effect")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestResultStatusMapping drives one job into each terminal state and
// checks GET /jobs/{id}/result encodes it in the HTTP status: 200
// done, 500 failed, 504 timed out, 409 canceled, 202 in flight, 404
// unknown. Failure and hang jobs are injected directly through the
// scheduler — the HTTP surface under test is the result mapping.
func TestResultStatusMapping(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	ts := newTestServer(t, sched.Config{Procs: 4, QueueDepth: 8, Clock: clk}, serverConfig{})

	result := func(id uint64) int {
		var st sched.JobStatus
		return ts.do("GET", fmt.Sprintf("/jobs/%d/result", id), nil, &st)
	}

	// 200: a healthy job submitted over HTTP.
	var done sched.JobStatus
	if code := ts.do("POST", "/jobs", map[string]any{"kind": "euler", "points": 8, "steps": 1}, &done); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	ts.waitState(done.ID, sched.StateDone)
	if code := result(done.ID); code != http.StatusOK {
		t.Errorf("result(done) = %d, want 200", code)
	}

	// 500: a job whose Run returns an error.
	failed, err := ts.s.Submit(sched.NewFuncJob("fail", 1, func(g *sched.Grant) error {
		return fmt.Errorf("injected failure")
	}))
	if err != nil {
		t.Fatal(err)
	}
	ts.waitState(failed.ID(), sched.StateFailed)
	if code := result(failed.ID()); code != http.StatusInternalServerError {
		t.Errorf("result(failed) = %d, want 500", code)
	}

	// 504: a hung job with a deadline on the virtual clock.
	hung, err := ts.s.SubmitWithOptions(sched.NewFuncJob("hang", 1, func(g *sched.Grant) error {
		<-g.Context().Done()
		return g.Checkpoint()
	}), sched.SubmitOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts.waitState(hung.ID(), sched.StateRunning)
	deadline := time.Now().Add(10 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("deadline watcher never registered")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(time.Minute)
	ts.waitState(hung.ID(), sched.StateTimedOut)
	if code := result(hung.ID()); code != http.StatusGatewayTimeout {
		t.Errorf("result(timed-out) = %d, want 504", code)
	}

	// 202 then 409: an in-flight job, then the same job canceled.
	gated := make(chan struct{})
	live, err := ts.s.Submit(sched.NewFuncJob("live", 1, func(g *sched.Grant) error {
		<-gated
		return g.Checkpoint()
	}))
	if err != nil {
		t.Fatal(err)
	}
	ts.waitState(live.ID(), sched.StateRunning)
	if code := result(live.ID()); code != http.StatusAccepted {
		t.Errorf("result(running) = %d, want 202", code)
	}
	if err := ts.s.Cancel(live.ID()); err != nil {
		t.Fatal(err)
	}
	close(gated)
	ts.waitState(live.ID(), sched.StateCanceled)
	if code := result(live.ID()); code != http.StatusConflict {
		t.Errorf("result(canceled) = %d, want 409", code)
	}

	// 404: no such job.
	if code := result(99999); code != http.StatusNotFound {
		t.Errorf("result(unknown) = %d, want 404", code)
	}
}

// TestCancelFinishedJobConflict: canceling a job that already reached
// a terminal state is 409, distinct from canceling an unknown id
// (404).
func TestCancelFinishedJobConflict(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 1, QueueDepth: 2}, serverConfig{})
	var st sched.JobStatus
	if code := ts.do("POST", "/jobs", map[string]any{"kind": "euler", "points": 8, "steps": 1}, &st); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	ts.waitState(st.ID, sched.StateDone)
	var errBody map[string]string
	if code := ts.do("POST", fmt.Sprintf("/jobs/%d/cancel", st.ID), nil, &errBody); code != http.StatusConflict {
		t.Errorf("cancel finished job = %d, want 409 (body %v)", code, errBody)
	}
	if code := ts.do("DELETE", fmt.Sprintf("/jobs/%d", st.ID), nil, &errBody); code != http.StatusConflict {
		t.Errorf("DELETE finished job = %d, want 409", code)
	}
}

// TestTimeoutSecOverHTTP: timeout_sec in the submission body applies a
// run deadline; the job reports timed-out and its result is 504. The
// scheduler runs on a virtual clock so no real time is burned.
func TestTimeoutSecOverHTTP(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	ts := newTestServer(t, sched.Config{Procs: 1, QueueDepth: 2, Clock: clk}, serverConfig{})

	var st sched.JobStatus
	if code := ts.do("POST", "/jobs", map[string]any{
		"kind": "synthetic", "parallelism": 1,
		"steps": maxSteps, "work_cycles": 1000000.0,
		"timeout_sec": 30.0,
	}, &st); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	ts.waitState(st.ID, sched.StateRunning)
	deadline := time.Now().Add(10 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("deadline watcher never registered")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(time.Minute)
	fin := ts.waitState(st.ID, sched.StateTimedOut)
	if fin.Cause != sched.CauseTimeout {
		t.Errorf("cause = %v, want timeout", fin.Cause)
	}
	var res sched.JobStatus
	if code := ts.do("GET", fmt.Sprintf("/jobs/%d/result", st.ID), nil, &res); code != http.StatusGatewayTimeout {
		t.Errorf("result = %d, want 504", code)
	}
	if m := ts.metrics(); m.TimedOut != 1 {
		t.Errorf("metrics.TimedOut = %d, want 1", m.TimedOut)
	}
}
