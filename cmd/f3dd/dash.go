package main

import (
	_ "embed"
	"net/http"
)

// dashHTML is the self-contained diagnosis dashboard: one HTML file,
// no external assets, so it works from an air-gapped host. It polls
// GET /analyze for the report and tails GET /trace/stream over SSE.
//
//go:embed dash.html
var dashHTML []byte

func (sv *server) handleDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-cache")
	_, _ = w.Write(dashHTML)
}
