package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/model"
	"repro/internal/parloop"
	"repro/internal/sched"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// TestAdaptiveJobOverHTTP is the end-to-end -adapt path: a daemon with
// the MeasuredAllocator granting, an adaptive submission over HTTP,
// and the controller's state served back from GET /jobs/{id}/adapt.
func TestAdaptiveJobOverHTTP(t *testing.T) {
	alloc := adapt.NewMeasuredAllocator()
	ts := newTestServer(t,
		sched.Config{Procs: 4, Allocator: alloc},
		serverConfig{adapt: alloc})

	var st sched.JobStatus
	code := ts.do("POST", "/jobs", map[string]any{
		"kind": "adaptive", "name": "rag", "parallelism": 64,
		"steps": 8, "work_scale": 150, "seed": 7,
	}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit adaptive = %d", code)
	}
	ts.waitState(st.ID, sched.StateDone)

	var ja adapt.JobAdapt
	if code := ts.do("GET", fmt.Sprintf("/jobs/%d/adapt", st.ID), nil, &ja); code != http.StatusOK {
		t.Fatalf("GET /jobs/%d/adapt = %d", st.ID, code)
	}
	if ja.ID != st.ID || ja.Name != "rag" || ja.State != "done" {
		t.Fatalf("adapt identity: %+v", ja)
	}
	if len(ja.Loops) != 1 {
		t.Fatalf("%d adaptive loops, want 1", len(ja.Loops))
	}
	loop := ja.Loops[0]
	if loop.Step != 8 {
		t.Fatalf("controller saw %d steps, want 8", loop.Step)
	}
	if loop.Choice.Chunk < 1 || loop.Choice.Workers < 1 || loop.Choice.Workers > 4 {
		t.Fatalf("final choice %v outside envelope", loop.Choice)
	}
	if len(loop.Decisions) == 0 {
		t.Fatal("decision log empty")
	}

	// A non-adaptive job answers 404 from /adapt, as does an unknown
	// job ID.
	var st2 sched.JobStatus
	if code := ts.do("POST", "/jobs", map[string]any{
		"kind": "euler", "points": 64, "steps": 1,
	}, &st2); code != http.StatusAccepted {
		t.Fatalf("submit euler = %d", code)
	}
	ts.waitState(st2.ID, sched.StateDone)
	if code := ts.do("GET", fmt.Sprintf("/jobs/%d/adapt", st2.ID), nil, nil); code != http.StatusNotFound {
		t.Fatalf("GET /adapt for non-adaptive job = %d, want 404", code)
	}
	if code := ts.do("GET", "/jobs/99999/adapt", nil, nil); code != http.StatusNotFound {
		t.Fatalf("GET /adapt for unknown job = %d, want 404", code)
	}
}

// TestAdaptiveNeedsFlag: without -adapt the kind is rejected up front.
func TestAdaptiveNeedsFlag(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 2}, serverConfig{})
	code := ts.do("POST", "/jobs", map[string]any{"kind": "adaptive"}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("adaptive submit without -adapt = %d, want 400", code)
	}
}

// TestAdaptGoldenJSON pins the exact GET /jobs/{id}/adapt wire format
// against testdata/adapt.golden (refresh with -update). The controller
// is driven by the deterministic simulator, so the body — decision log,
// scores and all — is reproducible bit for bit; tracetool's adapt
// subcommand renders this same shape.
func TestAdaptGoldenJSON(t *testing.T) {
	s := sched.New(sched.Config{Procs: 4})
	defer s.Close()
	sv := newServer(s, serverConfig{})
	hs := httptest.NewServer(sv)
	defer hs.Close()

	// A real (trivial) job anchors the ID, name and terminal state.
	p := model.StepProfile{Loops: []model.LoopClass{{
		Name: "loop", WorkCycles: 100, Parallelism: 8, SyncEvents: 1,
	}}}
	h, err := s.Submit(sched.NewSyntheticJob("golden", p, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// The loop state comes from a sim-driven controller: genuine policy
	// decisions, bit-reproducible output.
	cfg := adapt.Config{Procs: 4, M: 24, Chunks: []int{1, 8}}
	ctrl := adapt.New("rag-loop", adapt.Choice{Sched: parloop.Static, Chunk: 1, Workers: 4}, cfg)
	adapt.RunSim(adapt.Sim{W: adapt.Ragged(24, 800, 3, 5)}, ctrl, 160)
	sv.adaptMgr.Register(h.ID(), ctrl)

	resp, err := hs.Client().Get(fmt.Sprintf("%s/jobs/%d/adapt", hs.URL, h.ID()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /adapt = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "adapt.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatalf("update %s: %v", golden, err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", golden, err)
	}
	if string(body) != string(want) {
		t.Fatalf("GET /adapt drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, body, want)
	}
}
