package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/sched"
)

// runTracedJob enables tracing and runs one synthetic job to
// completion, returning its name.
func runTracedJob(t *testing.T, ts *testServer) string {
	t.Helper()
	var status traceStatus
	if code := ts.do("POST", "/trace/enable", nil, &status); code != http.StatusOK {
		t.Fatalf("POST /trace/enable = %d", code)
	}
	var st sched.JobStatus
	if code := ts.do("POST", "/jobs", map[string]any{
		"kind": "synthetic", "name": "diag-job", "parallelism": 4, "steps": 3, "work_cycles": 1000.0,
	}, &st); code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}
	ts.waitState(st.ID, sched.StateDone)
	return "diag-job"
}

// getFull fetches a path returning status, headers and body.
func (ts *testServer) getFull(path string) (int, http.Header, string) {
	ts.t.Helper()
	resp, err := ts.ts.Client().Get(ts.ts.URL + path)
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		ts.t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(b)
}

// TestTraceCursorAndHeaders: /trace honors ?since= and reports the
// next cursor and drop count in headers, sharing semantics with the
// SSE stream.
func TestTraceCursorAndHeaders(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 4, QueueDepth: 8}, serverConfig{})
	runTracedJob(t, ts)

	code, hdr, body := ts.getFull("/trace")
	if code != http.StatusOK {
		t.Fatalf("GET /trace = %d", code)
	}
	if hdr.Get("X-Trace-Dropped") != "0" {
		t.Errorf("X-Trace-Dropped = %q, want 0", hdr.Get("X-Trace-Dropped"))
	}
	next, err := strconv.ParseUint(hdr.Get("X-Trace-Next"), 10, 64)
	if err != nil || next == 0 {
		t.Fatalf("X-Trace-Next = %q, want a positive cursor", hdr.Get("X-Trace-Next"))
	}
	full := strings.Count(body, "\n")
	if full == 0 {
		t.Fatal("empty trace after a traced job")
	}

	// Resuming from the returned cursor yields nothing new and the
	// cursor does not move.
	code, hdr, body = ts.getFull("/trace?since=" + strconv.FormatUint(next, 10))
	if code != http.StatusOK || strings.TrimSpace(body) != "" {
		t.Errorf("GET /trace?since=next = %d with body %q, want empty 200", code, body)
	}
	if hdr.Get("X-Trace-Next") != strconv.FormatUint(next, 10) {
		t.Errorf("idle cursor moved: %q != %d", hdr.Get("X-Trace-Next"), next)
	}

	// A mid-stream cursor returns only the suffix.
	mid := next / 2
	if _, _, body = ts.getFull("/trace?since=" + strconv.FormatUint(mid, 10)); strings.Count(body, "\n") >= full {
		t.Errorf("since=%d returned %d lines, want fewer than %d", mid, strings.Count(body, "\n"), full)
	}

	if code, _, _ = ts.getFull("/trace?since=banana"); code != http.StatusBadRequest {
		t.Errorf("GET /trace?since=banana = %d, want 400", code)
	}
}

// TestTraceDroppedHeader: overflowing the ring surfaces the drop
// count in X-Trace-Dropped and a leading trace_dropped marker line.
func TestTraceDroppedHeader(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 4, QueueDepth: 8, Tracer: obs.NewTracer(16, nil)}, serverConfig{})
	runTracedJob(t, ts)

	code, hdr, body := ts.getFull("/trace")
	if code != http.StatusOK {
		t.Fatalf("GET /trace = %d", code)
	}
	dropped, err := strconv.ParseUint(hdr.Get("X-Trace-Dropped"), 10, 64)
	if err != nil || dropped == 0 {
		t.Fatalf("X-Trace-Dropped = %q, want > 0 after overflowing a 16-slot ring", hdr.Get("X-Trace-Dropped"))
	}
	firstLine, _, _ := strings.Cut(body, "\n")
	var marker map[string]any
	if err := json.Unmarshal([]byte(firstLine), &marker); err != nil {
		t.Fatalf("first trace line %q: %v", firstLine, err)
	}
	if marker["kind"] != "trace_dropped" || marker["a"] != float64(dropped) {
		t.Errorf("first line %v, want trace_dropped marker with a=%d", marker, dropped)
	}
}

// TestAnalyzeEndpoint: /analyze returns a decodable report built from
// the live ring, honoring model parameters.
func TestAnalyzeEndpoint(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 4, QueueDepth: 8}, serverConfig{})
	name := runTracedJob(t, ts)

	code, body := ts.get("/analyze?label=pr4&clock_ghz=2")
	if code != http.StatusOK {
		t.Fatalf("GET /analyze = %d", code)
	}
	var rep analyze.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("analyze response: %v", err)
	}
	if rep.Schema != analyze.Schema || rep.Label != "pr4" {
		t.Errorf("schema/label = %d/%q", rep.Schema, rep.Label)
	}
	if rep.Config.ClockGHz != 2 {
		t.Errorf("clock_ghz = %v, want 2", rep.Config.ClockGHz)
	}
	if len(rep.Loops) == 0 || rep.Loops[0].Name != name {
		t.Fatalf("loops = %+v, want %s first", rep.Loops, name)
	}
	l := rep.Loops[0]
	if l.Regions == 0 || l.Workers != 4 {
		t.Errorf("regions/workers = %d/%d, want >0/4", l.Regions, l.Workers)
	}
	if len(rep.Grants) == 0 {
		t.Error("no grant buckets from a scheduled job")
	}

	if code, _ := ts.get("/analyze?clock_ghz=banana"); code != http.StatusBadRequest {
		t.Errorf("GET /analyze?clock_ghz=banana = %d, want 400", code)
	}
	if code, _ := ts.get("/analyze?budget=-1"); code != http.StatusBadRequest {
		t.Errorf("GET /analyze?budget=-1 = %d, want 400", code)
	}
}

// TestTraceStreamSSE: the SSE tail replays the ring from a cursor
// with ids and JSON payloads, and honors Last-Event-ID.
func TestTraceStreamSSE(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 4, QueueDepth: 8}, serverConfig{})
	runTracedJob(t, ts)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.ts.URL+"/trace/stream?poll_ms=10", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace/stream = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Read the first two events: "id: N" then "data: {...}".
	sc := bufio.NewScanner(resp.Body)
	var ids []uint64
	var kinds []string
	for sc.Scan() && len(ids) < 2 {
		line := sc.Text()
		if id, ok := strings.CutPrefix(line, "id: "); ok {
			n, err := strconv.ParseUint(id, 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id %q", id)
			}
			ids = append(ids, n)
			continue
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var e map[string]any
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				t.Fatalf("SSE data %q: %v", data, err)
			}
			kinds = append(kinds, e["kind"].(string))
		}
	}
	cancel()
	if len(ids) < 2 || ids[1] != ids[0]+1 {
		t.Fatalf("SSE ids = %v, want consecutive sequences", ids)
	}
	if len(kinds) == 0 {
		t.Fatal("no SSE data lines")
	}

	// Last-Event-ID resumes after the given sequence.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	req2, err := http.NewRequestWithContext(ctx2, "GET", ts.ts.URL+"/trace/stream?poll_ms=10", nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Last-Event-ID", strconv.FormatUint(ids[0], 10))
	resp2, err := ts.ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		if id, ok := strings.CutPrefix(sc2.Text(), "id: "); ok {
			if id != strconv.FormatUint(ids[0]+1, 10) {
				t.Errorf("resumed stream starts at id %s, want %d", id, ids[0]+1)
			}
			break
		}
	}
	cancel2()

	// Garbage cursors are rejected before the stream starts.
	if code, _ := ts.get("/trace/stream?since=banana"); code != http.StatusBadRequest {
		t.Errorf("bad since = %d, want 400", code)
	}
	if code, _, _ := ts.getFull("/trace/stream?since=0&poll_ms=banana"); code != http.StatusBadRequest {
		t.Errorf("bad poll_ms = %d, want 400", code)
	}
}

// TestDashServed: the dashboard ships as one self-contained page.
func TestDashServed(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 2, QueueDepth: 4}, serverConfig{})
	code, hdr, body := ts.getFull("/dash")
	if code != http.StatusOK {
		t.Fatalf("GET /dash = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{"<!DOCTYPE html>", "trace/stream", "analyze", "EventSource"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	// Self-contained: no external script/style/font references.
	for _, banned := range []string{"http://", "https://", "src=", "@import"} {
		if strings.Contains(body, banned) {
			t.Errorf("dashboard references external resource (%q)", banned)
		}
	}
}
