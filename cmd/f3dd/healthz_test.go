package main

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"testing"

	"repro/internal/cluster"
	"repro/internal/f3d"
	"repro/internal/sched"
)

// TestHealthzReadiness: /healthz reports live queue depth and flips to
// 503 "draining" once shutdown begins, so a coordinator's Ping stops
// routing work to the daemon.
func TestHealthzReadiness(t *testing.T) {
	ts := newTestServer(t, sched.Config{Procs: 1, QueueDepth: 4}, serverConfig{})

	var h healthzReply
	if code := ts.do("GET", "/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", code)
	}
	if h.Status != "ok" || h.Procs != 1 || h.Queued != 0 || h.Running != 0 || h.Shards != 0 {
		t.Errorf("idle healthz = %+v, want ok with empty queue", h)
	}
	if h.NowNs == 0 {
		t.Error("healthz reports no clock (now_ns = 0); trace collectors cannot estimate this daemon's offset")
	}
	if h.TraceTotal != 0 || h.TraceDropped != 0 {
		t.Errorf("idle healthz trace counters = %d/%d, want 0/0", h.TraceTotal, h.TraceDropped)
	}

	// The tracer's lifetime counters surface on the probe: emit past
	// a tiny ring and both total and dropped must show up.
	tr := ts.s.Tracer()
	tr.Enable()
	var traced sched.JobStatus
	if code := ts.do("POST", "/jobs", map[string]any{"kind": "synthetic", "steps": 1}, &traced); code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}
	ts.waitState(traced.ID, sched.StateDone)
	if code := ts.do("GET", "/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", code)
	}
	if h.TraceTotal == 0 {
		t.Error("healthz trace_total still 0 after a traced job")
	}
	if h.TraceTotal != tr.Total() || h.TraceDropped != tr.Dropped() {
		t.Errorf("healthz trace counters = %d/%d, tracer says %d/%d",
			h.TraceTotal, h.TraceDropped, tr.Total(), tr.Dropped())
	}
	tr.Disable()

	// One hogging job plus two queued behind it: the probe must show
	// the backlog a router would want to balance away from.
	long := map[string]any{
		"kind": "synthetic", "parallelism": 1,
		"steps": maxSteps, "work_cycles": 1000000.0,
	}
	var first sched.JobStatus
	if code := ts.do("POST", "/jobs", long, &first); code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}
	ts.waitState(first.ID, sched.StateRunning)
	for i := 0; i < 2; i++ {
		if code := ts.do("POST", "/jobs", long, &sched.JobStatus{}); code != http.StatusAccepted {
			t.Fatalf("queued POST /jobs = %d", code)
		}
	}
	if code := ts.do("GET", "/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", code)
	}
	if h.Queued != 2 || h.Running != 1 || h.InUse != 1 {
		t.Errorf("busy healthz = %+v, want queued=2 running=1 in_use=1", h)
	}

	// Draining: cancel everything, drain, and the probe must answer 503
	// with the state spelled out.
	for _, id := range []uint64{first.ID, first.ID + 1, first.ID + 2} {
		ts.do("DELETE", fmt.Sprintf("/jobs/%d", id), nil, nil)
	}
	if err := ts.s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := ts.do("GET", "/healthz", nil, &h); code != http.StatusServiceUnavailable {
		t.Fatalf("draining GET /healthz = %d, want 503", code)
	}
	if h.Status != "draining" {
		t.Errorf("draining healthz status = %q, want \"draining\"", h.Status)
	}
}

// TestClusterSolveOverDaemons shards a three-zone solve across two
// full f3dd daemons (not bare shard servers): the coordinator talks to
// the same mux that serves jobs, metrics and healthz, and the residual
// history must still reproduce the single-node solve bitwise. It then
// drains one daemon and checks its readiness probe reads as
// not-routable.
func TestClusterSolveOverDaemons(t *testing.T) {
	a := newTestServer(t, sched.Config{Procs: 1, QueueDepth: 2}, serverConfig{})
	b := newTestServer(t, sched.Config{Procs: 1, QueueDepth: 2}, serverConfig{})

	c, ifaces := f3d.StackAlongJ("daemon", 20, 6, 5, []int{6, 12})
	cfg := f3d.DefaultConfig(c)
	const pulse, steps = 0.02, 4

	// Single-node reference.
	ref := func() []f3d.StepStats {
		rcfg := cfg
		rcfg.Case = c
		rcfg.Interfaces = ifaces
		s, err := f3d.NewCacheSolver(rcfg, f3d.CacheOptions{})
		if err != nil {
			t.Fatalf("reference solver: %v", err)
		}
		defer s.Close()
		f3d.InitPulse(s, pulse)
		out := make([]f3d.StepStats, steps)
		for i := range out {
			out[i] = s.Step()
		}
		return out
	}()

	coord := cluster.New(cluster.Config{})
	for id, ts := range map[string]*testServer{"a": a, "b": b} {
		if err := coord.Register(id, &cluster.HTTPClient{BaseURL: ts.ts.URL, Client: ts.ts.Client()}); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	res, err := coord.Solve(cluster.SolveSpec{
		Job: "daemon-solve", Zones: c.Zones, Interfaces: ifaces,
		Config: cfg, PulseAmp: pulse, Steps: steps,
	})
	if err != nil {
		t.Fatalf("sharded solve over daemons: %v", err)
	}
	if res.Workers != 2 {
		t.Errorf("solve used %d workers, want 2", res.Workers)
	}
	for i, st := range res.History {
		if math.Float64bits(st.Residual) != math.Float64bits(ref[i].Residual) ||
			math.Float64bits(st.MaxDelta) != math.Float64bits(ref[i].MaxDelta) {
			t.Fatalf("step %d diverged from single node: (%v, %v) vs (%v, %v)",
				i, st.Residual, st.MaxDelta, ref[i].Residual, ref[i].MaxDelta)
		}
	}

	// No shard leaks on either daemon.
	var h healthzReply
	for name, ts := range map[string]*testServer{"a": a, "b": b} {
		if code := ts.do("GET", "/healthz", nil, &h); code != http.StatusOK {
			t.Fatalf("daemon %s healthz = %d", name, code)
		}
		if h.Shards != 0 {
			t.Errorf("daemon %s leaked %d shards", name, h.Shards)
		}
	}

	// A drained daemon fails the coordinator's readiness ping.
	if err := b.s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	client := &cluster.HTTPClient{BaseURL: b.ts.URL, Client: b.ts.Client()}
	if err := client.Ping(); err == nil {
		t.Error("Ping succeeded against a draining daemon; coordinators would keep routing to it")
	}
}
