// Command autopar reproduces the paper's §8 comparison of
// parallelization approaches on a model F3D-like program: a fully
// automatic compiler (parallelize every parallelizable loop), a
// vectorizer-minded strategy (innermost loops) and the paper's
// profile-guided directives (outermost loops that clear the Table 1
// threshold). It prints each strategy's plan and predicted speedup on
// a simulated Origin 2000.
//
// Usage:
//
//	autopar [-procs N]
package main

import (
	"flag"
	"fmt"

	"repro/internal/autopar"
	"repro/internal/machine"
	"repro/internal/model"
)

func program() []*autopar.Nest {
	big := func(name string, work float64, stencil bool) *autopar.Nest {
		n := &autopar.Nest{
			Name: name,
			Loops: []autopar.Loop{
				{Var: "l", N: 350}, {Var: "k", N: 450}, {Var: "j", N: 175},
			},
			Accesses: []autopar.Access{
				autopar.WriteTo("q", autopar.Idx("j"), autopar.Idx("k"), autopar.Idx("l")),
				autopar.Read("rhs", autopar.Idx("j"), autopar.Idx("k"), autopar.Idx("l")),
			},
			WorkPerIter: work,
		}
		if stencil {
			n.Accesses = append(n.Accesses,
				autopar.Read("q", autopar.Idx("j").Plus(-1), autopar.Idx("k"), autopar.Idx("l")),
				autopar.Read("q", autopar.Idx("j").Plus(1), autopar.Idx("k"), autopar.Idx("l")),
			)
		}
		return n
	}
	nests := []*autopar.Nest{
		big("rhs", 50, false),
		big("sweep-j", 80, true),
	}
	// Cheap helper loops called thousands of times per step — the loops
	// automatic parallelization must NOT touch.
	for i := 0; i < 8; i++ {
		nests = append(nests, &autopar.Nest{
			Name:  fmt.Sprintf("helper%d", i),
			Loops: []autopar.Loop{{Var: "k", N: 75}, {Var: "j", N: 89}},
			Accesses: []autopar.Access{
				autopar.WriteTo("bc", autopar.Idx("j"), autopar.Idx("k")),
			},
			WorkPerIter: 4,
			Calls:       2000,
		})
	}
	return nests
}

func main() {
	procs := flag.Int("procs", 16, "target processor count")
	flag.Parse()

	sgi := machine.Origin2000R12K()
	m := autopar.Machine{
		Procs:    *procs,
		SyncCost: sgi.SyncCostCycles(*procs) * 10, // loaded-system cost (§3: "or more")
		Budget:   model.OverheadBudget,
	}
	nests := program()

	fmt.Printf("model program: %d nests; machine: %s, %d procs, sync %.0f cycles\n\n",
		len(nests), sgi.Name, m.Procs, m.SyncCost)
	for _, strat := range []autopar.Strategy{autopar.Outermost, autopar.Innermost, autopar.CostGuided} {
		plans, prof := autopar.PlanProgram(nests, strat, m)
		parallel, serial := 0, 0
		for _, p := range plans {
			if p.Parallel() {
				parallel++
			} else {
				serial++
			}
		}
		speedup := prof.PredictSpeedup(m.Procs, m.SyncCost)
		fmt.Printf("strategy %-12s: %2d nests parallelized, %2d serial, %8d sync events/step, predicted speedup %6.2fx\n",
			strat, parallel, serial, prof.SyncEventsPerStep(), speedup)
	}
	fmt.Println()
	fmt.Println("plans under cost-guided directives:")
	plans, _ := autopar.PlanProgram(nests, autopar.CostGuided, m)
	for _, p := range plans {
		where := "serial"
		if p.Parallel() {
			where = fmt.Sprintf("parallel at %s", p.Nest.Loops[p.Depth].Var)
		}
		fmt.Printf("  %-10s %-16s %s\n", p.Nest.Name, where, p.Reason)
	}
}
