// Command f3d runs the CFD solver reproduction: pick a case, a code
// variant (vector-style original or cache-tuned), a worker count and a
// step count, and it reports the residual history and the performance
// in the paper's metrics (time steps/hour, delivered MFLOPS).
//
// Usage:
//
//	f3d [-case 1m|59m|single] [-scale F] [-dims JxKxL]
//	    [-variant cache|vector|block] [-workers N] [-merged] [-parbc]
//	    [-mlp] [-zonal] [-viscous] [-re RE] [-stretch BETA] [-dissip4]
//	    [-steps N] [-pulse AMP] [-converge TOL] [-validate] [-profile]
//	    [-save FILE] [-load FILE] [-quiet]
//
// The paper's full-size cases are enormous for a laptop; use -scale to
// run a geometrically similar case (e.g. -case 1m -scale 0.25).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/parloop"
	"repro/internal/profile"
)

func main() {
	caseName := flag.String("case", "1m", "test case: 1m, 59m or single")
	scale := flag.Float64("scale", 0.25, "dimension scale factor for 1m/59m cases")
	dims := flag.String("dims", "33x25x21", "JxKxL dimensions for -case single")
	variant := flag.String("variant", "cache", "code variant: cache, vector or block")
	workers := flag.Int("workers", 1, "parallel workers (cache variant only)")
	merged := flag.Bool("merged", false, "run each zone step in one merged parallel region")
	parbc := flag.Bool("parbc", false, "parallelize boundary-condition loops too")
	steps := flag.Int("steps", 10, "time steps to run")
	pulse := flag.Float64("pulse", 0.05, "initial disturbance amplitude (0 = uniform flow)")
	quiet := flag.Bool("quiet", false, "suppress the per-step residual history")
	zonal := flag.Bool("zonal", false, "couple adjacent zones along J with interface exchange")
	viscous := flag.Bool("viscous", false, "enable thin-layer viscous terms")
	re := flag.Float64("re", 1000, "Reynolds number for -viscous")
	mlp := flag.Bool("mlp", false, "multi-level parallelism: one team of -workers per zone")
	converge := flag.Float64("converge", 0, "run until the residual falls by this factor (overrides -steps)")
	validate := flag.Bool("validate", false, "run the cross-variant validation ladder and exit")
	profileFlag := flag.Bool("profile", false, "print a prof-style per-phase profile after the run (cache variant)")
	stretch := flag.Float64("stretch", 0, "tanh wall-clustering factor for the L direction (0 = uniform)")
	dissip4 := flag.Bool("dissip4", false, "use pentadiagonal implicit fourth-difference dissipation (cache variant)")
	saveFile := flag.String("save", "", "write a checkpoint to this file after the run")
	loadFile := flag.String("load", "", "restart from a checkpoint file instead of -pulse initialization")
	kernels := flag.String("kernels", "scalar", "inner-loop kernel set: scalar or tuned (cache variant)")
	hexres := flag.Bool("hexres", false, "print residuals as exact hex floats (for bitwise run-to-run diffs)")
	flag.Parse()

	var kernelImpl f3d.KernelImpl
	switch *kernels {
	case "scalar":
		kernelImpl = f3d.ScalarKernels
	case "tuned":
		kernelImpl = f3d.TunedKernels
	default:
		fmt.Fprintf(os.Stderr, "f3d: unknown -kernels %q (want scalar or tuned)\n", *kernels)
		os.Exit(2)
	}

	c, err := buildCase(*caseName, *scale, *dims)
	if err != nil {
		fmt.Fprintln(os.Stderr, "f3d:", err)
		os.Exit(2)
	}
	if *stretch > 0 {
		for i := range c.Zones {
			z := &c.Zones[i]
			z.XL = grid.StretchCoords(z.LMax, *stretch)
			// Reuse the stretched zone's minimum spacing for dt estimation.
			sz := grid.StretchedZone(z.Name, z.JMax, z.KMax, z.LMax, 0, 0, *stretch)
			z.DL = sz.DL
		}
	}
	if *zonal {
		c = grid.UnifySpacing(c)
	}
	cfg := f3d.DefaultConfig(c)
	if *zonal {
		for i := 0; i+1 < len(c.Zones); i++ {
			cfg.Interfaces = append(cfg.Interfaces, f3d.Interface{Left: i, Right: i + 1})
		}
	}
	if *viscous {
		cfg.Viscous, cfg.Re = true, *re
	}
	cfg.ImplicitDissip4 = *dissip4

	if *validate {
		rep, err := f3d.CrossValidate(cfg, *steps, max(2, *workers))
		if err != nil {
			fmt.Fprintln(os.Stderr, "f3d:", err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}

	var solver f3d.Solver
	var team *parloop.Team
	var prof *profile.Profiler
	switch *variant {
	case "cache":
		opts := f3d.CacheOptions{Merged: *merged, Kernels: kernelImpl}
		opts.Phases = f3d.AllPhases()
		opts.Phases.BC = *parbc
		if *profileFlag && !*mlp {
			prof = profile.New()
			opts.Profiler = prof
		}
		if *mlp {
			for range c.Zones {
				tm := parloop.NewTeam(*workers)
				defer tm.Close()
				opts.ZoneTeams = append(opts.ZoneTeams, tm)
			}
		} else if *workers > 1 {
			team = parloop.NewTeam(*workers)
			defer team.Close()
			opts.Team = team
		}
		s, err := f3d.NewCacheSolver(cfg, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "f3d:", err)
			os.Exit(1)
		}
		defer s.Close()
		solver = s
	case "vector":
		if *workers > 1 {
			fmt.Fprintln(os.Stderr, "f3d: the vector variant is serial (that is the point); ignoring -workers")
		}
		s, err := f3d.NewVectorSolver(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "f3d:", err)
			os.Exit(1)
		}
		solver = s
	case "block":
		if *workers > 1 {
			team = parloop.NewTeam(*workers)
			defer team.Close()
		}
		phases := f3d.AllPhases()
		s, err := f3d.NewBlockSolver(cfg, f3d.CacheOptions{Team: team, Phases: phases})
		if err != nil {
			fmt.Fprintln(os.Stderr, "f3d:", err)
			os.Exit(1)
		}
		defer s.Close()
		solver = s
	default:
		fmt.Fprintf(os.Stderr, "f3d: unknown variant %q\n", *variant)
		os.Exit(2)
	}

	fmt.Printf("case %s: %d zones, %d points (max dim %d), dt=%.3e, variant=%s, workers=%d\n",
		c.Name, len(c.Zones), c.Points(), c.MaxDim(), cfg.Dt, *variant, *workers)
	for _, z := range c.Zones {
		fmt.Printf("  %v\n", z)
	}

	restartSteps := 0
	if *loadFile != "" {
		f, err := os.Open(*loadFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "f3d:", err)
			os.Exit(1)
		}
		restartSteps, err = f3d.LoadCheckpoint(f, solver)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "f3d:", err)
			os.Exit(1)
		}
		fmt.Printf("restarted from %s at step %d\n", *loadFile, restartSteps)
	} else if *pulse != 0 {
		f3d.InitPulse(solver, *pulse)
	} else {
		f3d.InitUniform(solver)
	}

	start := time.Now()
	var flops float64
	stepsRun := 0
	if *converge > 0 {
		h := f3d.RunToSteady(solver, 1 / *converge, *steps)
		stepsRun = h.Steps()
		flops = h.Flops
		if !*quiet {
			resFmt := "step %4d  residual %.6e\n"
			if *hexres {
				resFmt = "step %4d  residual %x\n"
			}
			for i, r := range h.Residuals {
				fmt.Printf(resFmt, i+1, r)
			}
		}
		fmt.Printf("converged=%v after %d steps (%.1f orders of residual reduction)\n",
			h.Converged, h.Steps(), h.ReductionOrders())
	} else {
		for i := 0; i < *steps; i++ {
			st := solver.Step()
			flops += st.Flops
			if !*quiet {
				if *hexres {
					fmt.Printf("step %4d  residual %x  max|dq| %x\n", i+1, st.Residual, st.MaxDelta)
				} else {
					fmt.Printf("step %4d  residual %.6e  max|dq| %.3e\n", i+1, st.Residual, st.MaxDelta)
				}
			}
			stepsRun++
		}
	}
	elapsed := time.Since(start)
	perStep := elapsed / time.Duration(stepsRun)
	fmt.Printf("%d steps in %v (%v/step)\n", stepsRun, elapsed.Round(time.Millisecond), perStep.Round(time.Millisecond))
	fmt.Printf("time steps/hour: %.1f\n", 3600/perStep.Seconds())
	fmt.Printf("delivered MFLOPS (estimated): %.1f\n", flops/elapsed.Seconds()/1e6)
	if team != nil {
		fmt.Printf("synchronization events: %d (%.1f per step)\n",
			team.SyncEvents(), float64(team.SyncEvents())/float64(stepsRun))
	}
	if prof != nil {
		fmt.Println()
		fmt.Println("per-phase profile (prof-style):")
		fmt.Print(profile.Format(prof.Entries(), 12))
	}
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "f3d:", err)
			os.Exit(1)
		}
		err = f3d.SaveCheckpoint(f, solver, restartSteps+stepsRun)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "f3d:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s (step %d)\n", *saveFile, restartSteps+stepsRun)
	}
}

func buildCase(name string, scale float64, dims string) (grid.Case, error) {
	switch name {
	case "1m":
		if scale == 1 {
			return grid.Paper1M(), nil
		}
		return grid.Scaled(grid.Paper1M(), scale), nil
	case "59m":
		if scale == 1 {
			return grid.Paper59M(), nil
		}
		return grid.Scaled(grid.Paper59M(), scale), nil
	case "single":
		var j, k, l int
		if _, err := fmt.Sscanf(strings.ToLower(dims), "%dx%dx%d", &j, &k, &l); err != nil {
			return grid.Case{}, fmt.Errorf("bad -dims %q: %v", dims, err)
		}
		return grid.Single(j, k, l), nil
	default:
		return grid.Case{}, fmt.Errorf("unknown case %q", name)
	}
}
