// Command contention runs the paper's Example 4 memory-access orderings
// (ideal / acceptable / unacceptable) through the cache, TLB and
// page-interleaved NUMA simulator and reports the miss rates and the
// page-sharing contention signal of §7.
//
// Usage:
//
//	contention [-procs N] [-dims JxKxL]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cachesim"
)

func main() {
	procs := flag.Int("procs", 8, "simulated processors")
	dims := flag.String("dims", "72x60x68", "array dimensions JxKxL")
	flag.Parse()

	cfg := cachesim.DefaultTraceConfig(*procs)
	var j, k, l int
	if _, err := fmt.Sscanf(strings.ToLower(*dims), "%dx%dx%d", &j, &k, &l); err != nil {
		fmt.Fprintf(os.Stderr, "contention: bad -dims %q: %v\n", *dims, err)
		os.Exit(2)
	}
	cfg.JMax, cfg.KMax, cfg.LMax = j, k, l

	fmt.Printf("Example 4: A(%d,%d,%d), %d processors, %d-node NUMA, %dB pages, %dKB/%dB/%d-way caches\n\n",
		j, k, l, cfg.Procs, cfg.Nodes, cfg.PageBytes, cfg.CacheBytes>>10, cfg.LineBytes, cfg.Ways)
	fmt.Printf("%-48s %10s %10s %10s %10s %10s\n",
		"ordering", "cache-miss", "tlb-miss", "pages", "avg-share", "shared%")
	for _, ord := range []cachesim.Ordering{
		cachesim.OrderingIdeal, cachesim.OrderingAcceptable, cachesim.OrderingUnacceptable,
	} {
		r := cachesim.Trace(cfg, ord)
		fmt.Printf("%-48s %9.2f%% %9.3f%% %10d %10.2f %9.1f%%\n",
			r.Ordering, 100*r.CacheMissRate, 100*r.TLBMissRate,
			r.PagesTouched, r.AvgSharersPerPage, 100*r.SharedPageFraction)
	}

	fmt.Println()
	fmt.Println("§7 effective per-processor bandwidth (one line per latency, no overlap):")
	for _, lat := range []float64{310e-9, 945e-9} {
		fmt.Printf("  %4.0f ns latency, 128 B lines: %6.1f MB/s\n",
			lat*1e9, cachesim.EffectiveBandwidthMBs(lat, 128))
	}
	fmt.Printf("  software DSM, 100 µs latency:  %6.2f MB/s (the §8 argument against software shared memory)\n",
		cachesim.EffectiveBandwidthMBs(100e-6, 128))
}
