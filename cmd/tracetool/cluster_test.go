package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// writeFleetTrace writes one lockstep step's merged timeline as JSONL:
// a coordinator wall span plus per-worker rpc/compute/exchange spans
// (milliseconds). With openWall true the coordinator wall is too short
// for the worker spans, so the attribution identity cannot close.
func writeFleetTrace(t *testing.T, path string, openWall bool) {
	t.Helper()
	base := time.Unix(0, 0)
	mk := func(kind obs.Kind, node string, ms int64) obs.Event {
		return obs.Event{Kind: kind, Name: "job", Worker: -1, Node: node,
			Trace: "job#1", Epoch: 0, At: base, Dur: time.Duration(ms) * time.Millisecond}
	}
	wall := int64(40)
	if openWall {
		wall = 5
	}
	events := []obs.Event{
		mk(obs.KindShardStep, "coord", wall),
		mk(obs.KindStepRPC, "w01", 10), mk(obs.KindShardStep, "w01", 8), mk(obs.KindExchange, "w01", 1),
		mk(obs.KindStepRPC, "w02", 30), mk(obs.KindShardStep, "w02", 26), mk(obs.KindExchange, "w02", 3),
	}
	var buf bytes.Buffer
	if err := obs.WriteEventsJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestClusterCommand(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "fleet.jsonl")
	report := filepath.Join(dir, "report.json")
	writeFleetTrace(t, trace, false)

	var out, errb bytes.Buffer
	code := run([]string{"cluster", "-o", report, trace}, nil, &out, &errb)
	if code != 0 {
		t.Fatalf("cluster exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	text := out.String()
	for _, want := range []string{"job#1", "exchange+barrier", "straggler", "w02"} {
		if !strings.Contains(text, want) {
			t.Errorf("cluster output missing %q:\n%s", want, text)
		}
	}

	b, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep analyze.ClusterReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("-o report: %v", err)
	}
	if !rep.Closed || len(rep.Solves) != 1 || rep.Solves[0].Steps[0].Straggler != "w02" {
		t.Errorf("report = closed %v, %d solves, straggler %q",
			rep.Closed, len(rep.Solves), rep.Solves[0].Steps[0].Straggler)
	}

	// -json prints the report itself.
	out.Reset()
	if code := run([]string{"cluster", "-json", trace}, nil, &out, &errb); code != 0 {
		t.Fatalf("cluster -json exit %d", code)
	}
	var rep2 analyze.ClusterReport
	if err := json.Unmarshal(out.Bytes(), &rep2); err != nil {
		t.Fatalf("-json output: %v", err)
	}
}

// TestClusterCommandClosureFailure: a timeline whose worker spans
// exceed the coordinator wall cannot close the identity — exit 1, the
// CI gate.
func TestClusterCommandClosureFailure(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "open.jsonl")
	writeFleetTrace(t, trace, true)

	var out, errb bytes.Buffer
	code := run([]string{"cluster", trace}, nil, &out, &errb)
	if code != 1 {
		t.Fatalf("cluster on an open timeline exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ATTRIBUTION OPEN") {
		t.Errorf("no closure diagnostic in output:\n%s", out.String())
	}
}

// TestClusterCommandNameTagging: NAME=path tags untagged events so
// bare single-daemon /trace dumps still land in a lane.
func TestClusterCommandNameTagging(t *testing.T) {
	dir := t.TempDir()
	base := time.Unix(0, 0)
	coordPath := filepath.Join(dir, "coord.jsonl")
	workerPath := filepath.Join(dir, "w01.jsonl")

	write := func(path string, events []obs.Event) {
		var buf bytes.Buffer
		if err := obs.WriteEventsJSONL(&buf, events); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(coordPath, []obs.Event{
		{Kind: obs.KindShardStep, Name: "job", Worker: -1, Trace: "job#1", At: base, Dur: 40 * time.Millisecond},
		{Kind: obs.KindStepRPC, Name: "job", Worker: -1, Node: "w01", Trace: "job#1", At: base, Dur: 10 * time.Millisecond},
	})
	write(workerPath, []obs.Event{
		{Kind: obs.KindShardStep, Name: "job", Worker: -1, Trace: "job#1", At: base, Dur: 8 * time.Millisecond},
		{Kind: obs.KindExchange, Name: "job", Worker: -1, Trace: "job#1", At: base, Dur: 1 * time.Millisecond},
	})

	var out, errb bytes.Buffer
	code := run([]string{"cluster", "-json", "coord=" + coordPath, "w01=" + workerPath}, nil, &out, &errb)
	if code != 0 {
		t.Fatalf("cluster exit %d, stderr: %s", code, errb.String())
	}
	var rep analyze.ClusterReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Solves) != 1 || len(rep.Solves[0].Steps) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	st := rep.Solves[0].Steps[0]
	if len(st.Workers) != 1 || st.Workers[0].Node != "w01" || st.Workers[0].ComputeNs != int64(8*time.Millisecond) {
		t.Errorf("lane = %+v, want w01 with tagged compute span", st.Workers)
	}
	if !rep.Closed {
		t.Error("tagged timeline did not close")
	}
}

// TestClusterCommandErrors: bad inputs are tool errors (exit 2), not
// regressions.
func TestClusterCommandErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"cluster"}, nil, &out, &errb); code != 2 {
		t.Errorf("no args exit %d, want 2", code)
	}
	if code := run([]string{"cluster", "/nonexistent/x.jsonl"}, nil, &out, &errb); code != 2 {
		t.Errorf("missing file exit %d, want 2", code)
	}
}
