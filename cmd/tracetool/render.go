package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/adapt"
	"repro/internal/obs/analyze"
	"repro/internal/profile"
)

// writeReport atomically-ish writes the JSON report (truncate-then-
// write is fine for CI artifacts).
func writeReport(path string, rep *analyze.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := encodeReport(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func encodeReport(w io.Writer, rep *analyze.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// loadReport reads a JSON report written by -o or GET /analyze.
func loadReport(path string) (*analyze.Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep analyze.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// renderReport prints the human-readable diagnosis: per-loop critical
// path and attribution, stair-step plateaus, the grant audit, and the
// ranked profile.
func renderReport(w io.Writer, rep *analyze.Report) {
	ns := func(v int64) string { return time.Duration(v).String() }
	fmt.Fprintf(w, "trace: %d events, wall %s", rep.Events, ns(rep.WallNs))
	if rep.Label != "" {
		fmt.Fprintf(w, ", label %s", rep.Label)
	}
	fmt.Fprintln(w)
	if rep.Truncated {
		fmt.Fprintf(w, "WARNING: trace truncated — %d events lost to ring wraparound; attribution undercounts\n", rep.DroppedEvents)
	}
	fmt.Fprintf(w, "model: %.3g GHz clock, %.6g-cycle sync, %.3g%% budget\n\n",
		rep.Config.ClockGHz, rep.Config.SyncCostCycles, 100*rep.Config.Budget)

	if len(rep.Loops) == 0 {
		fmt.Fprintln(w, "no complete parallel regions in trace")
		return
	}

	fmt.Fprintln(w, "loops (by work):")
	fmt.Fprintf(w, "  %-20s %8s %4s %6s %6s %10s %10s %9s %9s %7s\n",
		"loop", "regions", "P", "units", "syncs", "work", "critical", "achieved", "achievable", "budget")
	for _, l := range rep.Loops {
		verdict := "pass"
		if !l.Budget.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "  %-20s %8d %4d %6d %6d %10s %10s %8.2fx %9.2fx %7s\n",
			l.Name, l.Regions, l.Workers, l.Units, l.SyncEvents,
			ns(l.WorkNs), ns(l.CriticalNs), l.AchievedSpeedup, l.AchievableSpeedup, verdict)
		if l.IncompleteRegions > 0 {
			fmt.Fprintf(w, "  %-20s %d incomplete region(s) excluded (trace cut mid-region)\n", "", l.IncompleteRegions)
		}
	}

	fmt.Fprintln(w, "\nwall-time attribution (parallel / serial / barrier / imbalance / sync):")
	for _, l := range rep.Loops {
		a := l.Attribution
		fmt.Fprintf(w, "  %-20s %5.1f%% / %5.1f%% / %5.1f%% / %5.1f%% / %5.1f%% of %s\n",
			l.Name, 100*a.ParallelFrac, 100*a.SerialFrac, 100*a.BarrierFrac,
			100*a.ImbalanceFrac, 100*a.SyncFrac, ns(a.WallNs))
	}

	if len(rep.Plateaus) > 0 {
		fmt.Fprintln(w, "\nstair-step plateaus (measured vs model):")
		fmt.Fprintf(w, "  %6s %8s %9s %9s\n", "units", "procs", "measured", "predicted")
		for _, p := range rep.Plateaus {
			procs := fmt.Sprintf("%d", p.ProcsLo)
			if p.ProcsHi != p.ProcsLo {
				procs = fmt.Sprintf("%d-%d", p.ProcsLo, p.ProcsHi)
			}
			fmt.Fprintf(w, "  %6d %8s %8.2fx %8.2fx\n", p.Units, procs, p.MeasuredSpeedup, p.PredictedSpeedup)
		}
	}

	if len(rep.Grants) > 0 {
		fmt.Fprintf(w, "\nscheduler grants (plateau efficiency %.0f%%):\n", 100*rep.PlateauEfficiency)
		fmt.Fprintf(w, "  %-20s %5s %5s %6s %9s %8s\n", "job", "M", "P", "count", "stairstep", "plateau")
		for _, g := range rep.Grants {
			onp := "yes"
			if !g.OnPlateau {
				onp = "NO"
			}
			fmt.Fprintf(w, "  %-20s %5d %5d %6d %8.2fx %8s\n",
				g.Name, g.Requested, g.Procs, g.Count, g.PredictedSpeedup, onp)
		}
	}

	if len(rep.Ranked) > 0 {
		fmt.Fprintln(w, "\nranked profile:")
		fmt.Fprint(w, profile.Format(rep.Ranked, 10))
	}
}

// renderAdapt prints a job's adaptive-scheduling state — per-loop
// controller summary plus the decision log — from the JSON shape
// GET /jobs/{id}/adapt serves.
func renderAdapt(w io.Writer, ja *adapt.JobAdapt) {
	fmt.Fprintf(w, "job %d", ja.ID)
	if ja.Name != "" {
		fmt.Fprintf(w, " (%s)", ja.Name)
	}
	if ja.State != "" {
		fmt.Fprintf(w, " state %s", ja.State)
	}
	fmt.Fprintf(w, ": %d adaptive loop(s)\n", len(ja.Loops))

	for _, loop := range ja.Loops {
		conv := "exploring"
		if loop.Converged {
			conv = "converged"
		}
		fmt.Fprintf(w, "\nloop %-16s step %d, pick %s, %s, baseline %s (explored %d, rejected %d)\n",
			loop.Label, loop.Step, loop.Choice, conv,
			time.Duration(loop.BaselineNs).String(), loop.Explored, loop.Rejected)
		if len(loop.Decisions) == 0 {
			continue
		}
		fmt.Fprintf(w, "  %6s %-11s %-22s %-22s %12s %12s  %s\n",
			"step", "action", "choice", "judged", "score", "baseline", "reason")
		for _, d := range loop.Decisions {
			judged := "-"
			if d.Judged != nil {
				judged = d.Judged.String()
			}
			score, baseline := "-", "-"
			if d.ScoreNs > 0 {
				score = time.Duration(d.ScoreNs).String()
			}
			if d.BaselineNs > 0 {
				baseline = time.Duration(d.BaselineNs).String()
			}
			fmt.Fprintf(w, "  %6d %-11s %-22s %-22s %12s %12s  %s\n",
				d.Step, d.Action, d.Choice.String(), judged, score, baseline, d.Reason)
		}
	}
}
