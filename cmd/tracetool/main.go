// Command tracetool is the offline companion to the f3dd /analyze
// endpoint: it runs the trace-analysis engine (internal/obs/analyze)
// over JSONL traces exported from GET /trace, benchdump -trace-out,
// or any obs.Tracer dump.
//
// Usage:
//
//	tracetool analyze [-clock-ghz G] [-sync-cost C] [-budget B]
//	                  [-label L] [-json] [-o report.json] trace.jsonl
//	tracetool convert -format speedscope|chrome [-o out.json] trace.jsonl
//	tracetool diff [-tol PCT] old-report.json new-report.json
//	tracetool adapt adapt.json
//	tracetool plan plan.json
//	tracetool cluster [-coord TAG] [-json] [-o report.json]
//	                  [NAME=]fleet.jsonl...
//
// analyze prints the human-readable diagnosis (critical path, Amdahl
// attribution, stair-step plateaus, sync-budget verdicts) and with -o
// also writes the JSON report for later diffing. convert renders the
// trace for speedscope.app or chrome://tracing. diff compares two
// analyze reports and exits 1 when the new one regresses beyond -tol,
// so CI can gate on trace-derived facts. adapt renders the JSON from
// f3dd's GET /jobs/{id}/adapt — per-loop adaptive-controller state —
// as a human-readable decision-log table. plan renders the JSON from
// f3dd's GET /jobs/{id}/plan — the evidence-driven
// auto-parallelization plan — as a per-loop decision table with each
// decision's rationale. cluster merges node-tagged
// fleet timelines (f3dc -trace-out, per-daemon /trace dumps) and
// prints the cross-node critical path — per-step attribution,
// straggler tally, exchange+barrier share — exiting 1 when the
// attribution identity fails to close. A "-" input path reads stdin.
// Exit 2 means the tool could not run (bad flags, unreadable input).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/adapt"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with injectable streams, so the CLI is testable
// in-process.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "tracetool: need a subcommand: analyze, convert, diff, adapt, plan or cluster")
		return 2
	}
	switch args[0] {
	case "analyze":
		return cmdAnalyze(args[1:], stdin, stdout, stderr)
	case "convert":
		return cmdConvert(args[1:], stdin, stdout, stderr)
	case "diff":
		return cmdDiff(args[1:], stdout, stderr)
	case "adapt":
		return cmdAdapt(args[1:], stdin, stdout, stderr)
	case "plan":
		return cmdPlan(args[1:], stdin, stdout, stderr)
	case "cluster":
		return cmdCluster(args[1:], stdin, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "tracetool: unknown subcommand %q (want analyze, convert, diff, adapt, plan or cluster)\n", args[0])
		return 2
	}
}

// readTrace loads a JSONL trace from path ("-" = stdin).
func readTrace(path string, stdin io.Reader) ([]obs.Event, error) {
	var r io.Reader
	if path == "-" {
		r = stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return obs.ReadJSONL(r)
}

func cmdAnalyze(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracetool analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	clockGHz := fs.Float64("clock-ghz", 0, "clock speed for ns→cycle conversion (default 1)")
	syncCost := fs.Float64("sync-cost", 0, "synchronization cost in cycles (default 10000, a Table 1 column)")
	budget := fs.Float64("budget", 0, "tolerable synchronization fraction (default 0.01)")
	label := fs.String("label", "", "label stamped into the report")
	jsonOut := fs.Bool("json", false, "print the JSON report instead of the human-readable view")
	outPath := fs.String("o", "", "also write the JSON report to this path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "tracetool analyze: need exactly one trace path (or - for stdin)")
		return 2
	}
	events, err := readTrace(fs.Arg(0), stdin)
	if err != nil {
		fmt.Fprintf(stderr, "tracetool analyze: %v\n", err)
		return 2
	}
	rep := analyze.Analyze(events, analyze.Config{
		ClockGHz:       *clockGHz,
		SyncCostCycles: *syncCost,
		Budget:         *budget,
	})
	rep.Label = *label

	if *outPath != "" {
		if err := writeReport(*outPath, rep); err != nil {
			fmt.Fprintf(stderr, "tracetool analyze: %v\n", err)
			return 2
		}
	}
	if *jsonOut {
		if err := encodeReport(stdout, rep); err != nil {
			fmt.Fprintf(stderr, "tracetool analyze: %v\n", err)
			return 2
		}
		return 0
	}
	renderReport(stdout, rep)
	return 0
}

func cmdAdapt(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracetool adapt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "tracetool adapt: need exactly one adapt-state path (or - for stdin)")
		return 2
	}
	var r io.Reader
	if fs.Arg(0) == "-" {
		r = stdin
	} else {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "tracetool adapt: %v\n", err)
			return 2
		}
		defer f.Close()
		r = f
	}
	var ja adapt.JobAdapt
	if err := json.NewDecoder(r).Decode(&ja); err != nil {
		fmt.Fprintf(stderr, "tracetool adapt: %v\n", err)
		return 2
	}
	renderAdapt(stdout, &ja)
	return 0
}

func cmdConvert(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracetool convert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "speedscope", "output format: speedscope or chrome")
	outPath := fs.String("o", "", "output path (default stdout)")
	name := fs.String("name", "trace", "profile name embedded in the output")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "tracetool convert: need exactly one trace path (or - for stdin)")
		return 2
	}
	events, err := readTrace(fs.Arg(0), stdin)
	if err != nil {
		fmt.Fprintf(stderr, "tracetool convert: %v\n", err)
		return 2
	}

	var out io.Writer = stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "tracetool convert: %v\n", err)
			return 2
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "speedscope":
		err = analyze.WriteSpeedscope(out, events, *name)
	case "chrome":
		err = analyze.WriteChromeTrace(out, events)
	default:
		fmt.Fprintf(stderr, "tracetool convert: unknown format %q (want speedscope or chrome)\n", *format)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "tracetool convert: %v\n", err)
		return 2
	}
	return 0
}

func cmdDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracetool diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tol := fs.Float64("tol", 1, "tolerance in percent (relative for speedups, points for fractions)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "tracetool diff: need exactly two report paths (old new)")
		return 2
	}
	oldR, err := loadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "tracetool diff: %v\n", err)
		return 2
	}
	newR, err := loadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "tracetool diff: %v\n", err)
		return 2
	}
	deltas := analyze.Diff(oldR, newR, *tol)
	regressions := 0
	for _, d := range deltas {
		fmt.Fprintln(stdout, d.String())
		if d.Severity == analyze.SevRegression {
			regressions++
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "%d regression(s) beyond %.3g%% tolerance\n", regressions, *tol)
		return 1
	}
	fmt.Fprintf(stdout, "no regressions (%d delta(s) within tolerance)\n", len(deltas))
	return 0
}
