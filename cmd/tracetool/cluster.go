package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// cmdCluster merges one or more node-tagged fleet timelines (f3dc
// -trace-out, f3dd GET /trace dumps) and runs the cross-node
// critical-path analysis: per-step exact-sum attribution
// (wall = compute + exchange + straggler + failover + collect),
// the straggler tally, and the exchange+barrier headline — the
// distributed analogue of the paper's synchronization overhead.
//
// Each argument is a JSONL path, plain or NAME=path; the NAME form
// tags events whose Node field is empty (a single-daemon /trace dump
// predating node tags) so they still attribute to a lane. Exit 1
// means the attribution identity failed to close — time the
// coordinator cannot account for — which CI treats as a regression.
func cmdCluster(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracetool cluster", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coord := fs.String("coord", "coord", "node tag of the coordinator's events")
	jsonOut := fs.Bool("json", false, "print the JSON report instead of the human-readable view")
	outPath := fs.String("o", "", "also write the JSON report to this path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		fmt.Fprintln(stderr, "tracetool cluster: need at least one timeline path ([name=]trace.jsonl, - for stdin)")
		return 2
	}

	var events []obs.Event
	for _, arg := range fs.Args() {
		name, path := "", arg
		if i := strings.IndexByte(arg, '='); i >= 0 {
			name, path = arg[:i], arg[i+1:]
		}
		batch, err := readTrace(path, stdin)
		if err != nil {
			fmt.Fprintf(stderr, "tracetool cluster: %v\n", err)
			return 2
		}
		if name != "" {
			for i := range batch {
				if batch[i].Node == "" {
					batch[i].Node = name
				}
			}
		}
		events = append(events, batch...)
	}

	rep := analyze.ClusterAnalyze(events, analyze.ClusterConfig{CoordNode: *coord})
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "tracetool cluster: %v\n", err)
			return 2
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "tracetool cluster: %v\n", err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "tracetool cluster: %v\n", err)
			return 2
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "tracetool cluster: %v\n", err)
			return 2
		}
	} else {
		renderClusterReport(stdout, rep)
	}

	if err := analyze.CheckClusterClosure(rep); err != nil {
		fmt.Fprintf(stdout, "ATTRIBUTION OPEN: %v\n", err)
		return 1
	}
	return 0
}

// renderClusterReport prints the human-readable fleet diagnosis.
func renderClusterReport(w io.Writer, rep *analyze.ClusterReport) {
	ns := func(v int64) string { return time.Duration(v).String() }
	fmt.Fprintf(w, "fleet: %d events over %d node(s) %v, %d solve(s)\n",
		rep.Events, len(rep.Nodes), rep.Nodes, len(rep.Solves))
	if rep.Truncated {
		fmt.Fprintf(w, "WARNING: ring wraparound — events lost per node: %v; affected lanes degrade to \"plausible\"\n",
			rep.DroppedEvents)
	}
	fmt.Fprintf(w, "exchange+barrier share of wall: %.1f%% (the paper's sync-overhead term, distributed)\n",
		100*rep.ExchangeBarrierShare)

	for _, s := range rep.Solves {
		fmt.Fprintf(w, "\nsolve %s (job %q): %d step(s), wall %s, exchange+barrier %.1f%%",
			s.Trace, s.Job, s.Totals.Step, ns(s.Totals.WallNs), 100*s.ExchangeBarrierShare)
		if s.Partial {
			fmt.Fprint(w, " [plausible]")
		}
		fmt.Fprintln(w)

		fmt.Fprintf(w, "  %4s %10s %10s %10s %10s %10s %10s  %s\n",
			"step", "wall", "compute", "exchange", "straggler", "failover", "collect", "straggler node")
		for _, st := range s.Steps {
			who := st.Straggler
			if who == "" {
				who = "-"
			}
			if st.Verdict == "plausible" {
				who += " (plausible)"
			}
			fmt.Fprintf(w, "  %4d %10s %10s %10s %10s %10s %10s  %s\n",
				st.Step, ns(st.WallNs), ns(st.ComputeNs), ns(st.ExchangeNs),
				ns(st.StragglerNs), ns(st.FailoverNs), ns(st.CollectNs), who)
			if !st.Closed {
				fmt.Fprintf(w, "       OPEN: %s unaccounted\n", ns(-st.ResidualNs))
			}
		}

		if len(s.Stragglers) > 0 {
			fmt.Fprintln(w, "  stragglers (lockstep races lost):")
			for _, c := range s.Stragglers {
				fmt.Fprintf(w, "    %-24s %3d step(s)  %s lost\n", c.Node, c.Steps, ns(c.StragglerNs))
			}
		}
	}
}
