package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPlanCommandGolden pins the rendered decision table against
// testdata/plan.golden (refresh with -update). The input fixture is
// byte-identical to the f3dd GET /jobs/{id}/plan golden, so the two
// tests pin opposite sides of the same wire contract.
func TestPlanCommandGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"plan", filepath.Join("testdata", "plan.json")}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("plan exited %d: %s", code, stderr.String())
	}

	golden := filepath.Join("testdata", "plan.golden")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatalf("update %s: %v", golden, err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", golden, err)
	}
	if stdout.String() != string(want) {
		t.Fatalf("plan output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, stdout.String(), want)
	}
	// Every action and the rationale vocabulary must survive format
	// tweaks.
	for _, needle := range []string{"parallelize", "merge", "fission", "serial",
		"group-budget", "Table 1", "parallel [jk], serial [l]"} {
		if !strings.Contains(stdout.String(), needle) {
			t.Errorf("output missing %q", needle)
		}
	}
}

// TestPlanCommandFixtureMatchesDaemonGolden keeps the fixture and the
// f3dd-side golden from drifting apart: same bytes, same contract.
func TestPlanCommandFixtureMatchesDaemonGolden(t *testing.T) {
	fixture, err := os.ReadFile(filepath.Join("testdata", "plan.json"))
	if err != nil {
		t.Fatal(err)
	}
	daemon, err := os.ReadFile(filepath.Join("..", "f3dd", "testdata", "plan.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixture, daemon) {
		t.Fatal("testdata/plan.json drifted from cmd/f3dd/testdata/plan.golden; copy it over")
	}
}

// TestPlanCommandStdin reads the plan from stdin via "-".
func TestPlanCommandStdin(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "plan.json"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"plan", "-"}, bytes.NewReader(data), &stdout, &stderr); code != 0 {
		t.Fatalf("plan - exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "golden/rhs") {
		t.Fatalf("stdin render missing loop name:\n%s", stdout.String())
	}
}

// TestPlanCommandErrors: unreadable input, bad JSON and a body with no
// plan exit 2.
func TestPlanCommandErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"plan", "no-such-file.json"}, nil, &stdout, &stderr); code != 2 {
		t.Fatalf("missing file exited %d, want 2", code)
	}
	if code := run([]string{"plan", "-"}, strings.NewReader("{not json"), &stdout, &stderr); code != 2 {
		t.Fatalf("bad JSON exited %d, want 2", code)
	}
	if code := run([]string{"plan", "-"}, strings.NewReader(`{"id":1}`), &stdout, &stderr); code != 2 {
		t.Fatalf("plan-less body exited %d, want 2", code)
	}
	if code := run([]string{"plan"}, nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no args exited %d, want 2", code)
	}
}
