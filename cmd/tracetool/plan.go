package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/autopar/pipeline"
)

// cmdPlan renders the JSON from f3dd's GET /jobs/{id}/plan — the
// evidence-driven auto-parallelization plan — as a human-readable
// decision table with each loop's rationale.
func cmdPlan(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracetool plan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "tracetool plan: need exactly one plan path (or - for stdin)")
		return 2
	}
	var r io.Reader
	if fs.Arg(0) == "-" {
		r = stdin
	} else {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "tracetool plan: %v\n", err)
			return 2
		}
		defer f.Close()
		r = f
	}
	var jp pipeline.JobPlan
	if err := json.NewDecoder(r).Decode(&jp); err != nil {
		fmt.Fprintf(stderr, "tracetool plan: %v\n", err)
		return 2
	}
	if jp.Plan == nil {
		fmt.Fprintln(stderr, "tracetool plan: input carries no plan")
		return 2
	}
	renderPlan(stdout, &jp)
	return 0
}

// renderPlan prints one line per planned loop plus the rationale facts
// behind each decision, from the JSON shape GET /jobs/{id}/plan
// serves.
func renderPlan(w io.Writer, jp *pipeline.JobPlan) {
	fmt.Fprintf(w, "job %d", jp.ID)
	if jp.Name != "" {
		fmt.Fprintf(w, " (%s)", jp.Name)
	}
	if jp.State != "" {
		fmt.Fprintf(w, " state %s", jp.State)
	}
	p := jp.Plan
	fmt.Fprintf(w, ": plan for %d loop(s)", len(p.Loops))
	if p.Procs > 0 {
		fmt.Fprintf(w, " on %d procs", p.Procs)
	}
	if p.Source != "" {
		fmt.Fprintf(w, " (source %s)", p.Source)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "decisions: %d parallelize, %d merge, %d fission, %d serial\n",
		p.Count(pipeline.Parallelize), p.Count(pipeline.Merge),
		p.Count(pipeline.Fission), p.Count(pipeline.Serial))

	for _, lp := range p.Loops {
		fmt.Fprintf(w, "\n%-24s %s", lp.Loop, lp.Action)
		switch {
		case lp.Action == pipeline.Merge && lp.Group != "":
			fmt.Fprintf(w, " into group %q", lp.Group)
		case lp.Action == pipeline.Fission:
			fmt.Fprintf(w, " -> parallel [%s], serial [%s]",
				strings.Join(lp.ParallelParts, ", "), strings.Join(lp.SerialParts, ", "))
		}
		fmt.Fprintln(w)
		for _, f := range lp.Rationale {
			target := ""
			if f.Part != "" {
				target = " part " + f.Part
			}
			val := ""
			if f.Value != 0 {
				val = fmt.Sprintf(" [%.3g]", f.Value)
			}
			fmt.Fprintf(w, "  %-14s%s %s%s\n", f.Kind, target, f.Detail, val)
		}
	}
}
