package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// writeTrace dumps a synthetic stair-step trace as JSONL.
func writeTrace(t *testing.T, path string, teamSizes []int, unitDur time.Duration) {
	t.Helper()
	start := time.Date(2001, 9, 1, 0, 0, 0, 0, time.UTC)
	events := analyze.StairStepTrace("zone", 15, teamSizes, unitDur, 100*time.Microsecond, start)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeCommand(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	report := filepath.Join(dir, "report.json")
	writeTrace(t, trace, []int{1, 5, 8}, time.Millisecond)

	var out, errb bytes.Buffer
	code := run([]string{"analyze", "-label", "t", "-o", report, trace}, nil, &out, &errb)
	if code != 0 {
		t.Fatalf("analyze exit %d, stderr: %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{"zone", "stair-step plateaus", "wall-time attribution", "ranked profile"} {
		if !strings.Contains(text, want) {
			t.Errorf("analyze output missing %q:\n%s", want, text)
		}
	}

	rep, err := loadReport(report)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Label != "t" || len(rep.Loops) != 1 || rep.Loops[0].Units != 15 {
		t.Errorf("report = label %q, %d loops", rep.Label, len(rep.Loops))
	}

	// -json prints the report itself.
	out.Reset()
	if code := run([]string{"analyze", "-json", trace}, nil, &out, &errb); code != 0 {
		t.Fatalf("analyze -json exit %d", code)
	}
	var rep2 analyze.Report
	if err := json.Unmarshal(out.Bytes(), &rep2); err != nil {
		t.Fatalf("-json output: %v", err)
	}

	// Stdin works via "-".
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out.Reset()
	if code := run([]string{"analyze", "-"}, f, &out, &errb); code != 0 {
		t.Fatalf("analyze - exit %d", code)
	}
}

func TestAnalyzeCommandTruncatedWarning(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	start := time.Date(2001, 9, 1, 0, 0, 0, 0, time.UTC)
	events := analyze.StairStepTrace("zone", 15, []int{5}, time.Millisecond, 0, start)
	events = append([]obs.Event{obs.DropMarker(1, 99, start)}, events...)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(trace, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if code := run([]string{"analyze", trace}, nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "99 events lost") {
		t.Errorf("no truncation warning in:\n%s", out.String())
	}
}

func TestConvertCommand(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	writeTrace(t, trace, []int{5}, time.Millisecond)

	var out, errb bytes.Buffer
	if code := run([]string{"convert", "-format", "speedscope", trace}, nil, &out, &errb); code != 0 {
		t.Fatalf("convert speedscope exit %d: %s", code, errb.String())
	}
	var ss map[string]any
	if err := json.Unmarshal(out.Bytes(), &ss); err != nil {
		t.Fatalf("speedscope output: %v", err)
	}
	if ss["$schema"] != "https://www.speedscope.app/file-format-schema.json" {
		t.Errorf("$schema = %v", ss["$schema"])
	}

	chromePath := filepath.Join(dir, "chrome.json")
	if code := run([]string{"convert", "-format", "chrome", "-o", chromePath, trace}, nil, &out, &errb); code != 0 {
		t.Fatalf("convert chrome exit %d: %s", code, errb.String())
	}
	blob, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var ct map[string]any
	if err := json.Unmarshal(blob, &ct); err != nil {
		t.Fatalf("chrome output: %v", err)
	}
	if _, ok := ct["traceEvents"].([]any); !ok {
		t.Errorf("chrome output has no traceEvents array: %v", ct)
	}

	if code := run([]string{"convert", "-format", "bogus", trace}, nil, &out, &errb); code != 2 {
		t.Errorf("bogus format exit %d, want 2", code)
	}
}

func TestDiffCommand(t *testing.T) {
	dir := t.TempDir()
	goodTrace := filepath.Join(dir, "good.jsonl")
	badTrace := filepath.Join(dir, "bad.jsonl")
	writeTrace(t, goodTrace, []int{8}, time.Millisecond)
	writeTrace(t, badTrace, []int{5}, time.Microsecond)

	goodRep := filepath.Join(dir, "good.json")
	badRep := filepath.Join(dir, "bad.json")
	var out, errb bytes.Buffer
	if code := run([]string{"analyze", "-o", goodRep, goodTrace}, nil, &out, &errb); code != 0 {
		t.Fatal("analyze good failed")
	}
	if code := run([]string{"analyze", "-o", badRep, badTrace}, nil, &out, &errb); code != 0 {
		t.Fatal("analyze bad failed")
	}

	// Same report: no regressions, exit 0.
	out.Reset()
	if code := run([]string{"diff", goodRep, goodRep}, nil, &out, &errb); code != 0 {
		t.Errorf("self-diff exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("self-diff output:\n%s", out.String())
	}

	// Regressed report: exit 1 and a readable summary.
	out.Reset()
	if code := run([]string{"diff", goodRep, badRep}, nil, &out, &errb); code != 1 {
		t.Errorf("regression diff exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "regression") || !strings.Contains(out.String(), "achieved_speedup") {
		t.Errorf("regression diff output:\n%s", out.String())
	}

	if code := run([]string{"diff", goodRep}, nil, &out, &errb); code != 2 {
		t.Errorf("missing arg exit %d, want 2", code)
	}
	if code := run([]string{"diff", goodRep, filepath.Join(dir, "nope.json")}, nil, &out, &errb); code != 2 {
		t.Errorf("missing file exit %d, want 2", code)
	}
}

func TestUnknownSubcommand(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"frobnicate"}, nil, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if code := run(nil, nil, &out, &errb); code != 2 {
		t.Errorf("no-arg exit %d, want 2", code)
	}
}
