package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// TestAdaptCommandGolden pins the decision-log table against
// testdata/adapt.golden (refresh with -update). The input fixture is
// the same wire shape f3dd's GET /jobs/{id}/adapt serves — the f3dd
// golden test pins the JSON side of the contract, this one the
// rendered side.
func TestAdaptCommandGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"adapt", filepath.Join("testdata", "adapt.json")}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("adapt exited %d: %s", code, stderr.String())
	}

	golden := filepath.Join("testdata", "adapt.golden")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatalf("update %s: %v", golden, err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", golden, err)
	}
	if stdout.String() != string(want) {
		t.Fatalf("adapt output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, stdout.String(), want)
	}
	// Spot-check load-bearing table content survives format tweaks.
	for _, needle := range []string{"adaptive loop(s)", "explore", "adopt", "converged"} {
		if !strings.Contains(stdout.String(), needle) {
			t.Errorf("output missing %q", needle)
		}
	}
}

// TestAdaptCommandStdin reads the state from stdin via "-".
func TestAdaptCommandStdin(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "adapt.json"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"adapt", "-"}, bytes.NewReader(data), &stdout, &stderr); code != 0 {
		t.Fatalf("adapt - exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "rag-loop") {
		t.Fatalf("stdin render missing loop label:\n%s", stdout.String())
	}
}

// TestAdaptCommandErrors: unreadable input and bad JSON exit 2.
func TestAdaptCommandErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"adapt", "no-such-file.json"}, nil, &stdout, &stderr); code != 2 {
		t.Fatalf("missing file exited %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"adapt", "-"}, strings.NewReader("{not json"), &stdout, &stderr); code != 2 {
		t.Fatalf("bad JSON exited %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"adapt"}, nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no args exited %d, want 2", code)
	}
}
