// Command checktool runs the correctness-verification subsystem from
// the command line: the differential conformance harness (every
// registered kernel over the {schedule} × {team size} × {chunk} ×
// {mid-run resize} matrix, compared against its serial reference) and
// the dynamic loop-dependence checker (shipped kernels' tracked
// variants must be race-free). The matrix includes an adaptive column:
// every kernel also runs under internal/adapt's scripted controller,
// re-picking schedule, chunk and team size at step boundaries.
//
// With -selftest it also verifies the machinery bites: the
// deliberately seeded loop-carried dependence must fail the harness
// and be flagged by the checker.
//
// Usage:
//
//	checktool [-teams 1,2,3,4,6,8] [-chunks 1,3,16] [-resize] [-adaptive]
//	          [-deps] [-depworkers 4] [-kernel substr] [-selftest] [-v]
//
// Exit status 0 when every obligation holds, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/check"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(out, errw io.Writer, args []string) int {
	fs := flag.NewFlagSet("checktool", flag.ContinueOnError)
	fs.SetOutput(errw)
	teams := fs.String("teams", "1,2,3,4,6,8", "comma-separated team sizes")
	chunks := fs.String("chunks", "1,3,16", "comma-separated chunk sizes for the chunked schedules")
	resize := fs.Bool("resize", true, "include the mid-run Team.Resize column for multi-step kernels")
	adaptive := fs.Bool("adaptive", true, "include the scripted adaptive-controller column (mid-run schedule/chunk/team re-picks)")
	deps := fs.Bool("deps", true, "run the dynamic loop-dependence checker over the tracked kernels")
	depWorkers := fs.Int("depworkers", 4, "team size for the dependence checker")
	kernel := fs.String("kernel", "", "run only kernels whose name contains this substring")
	selftest := fs.Bool("selftest", false, "verify the harness and checker catch the seeded dependence")
	verbose := fs.Bool("v", false, "list every kernel as it is checked")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	m := check.Matrix{Resize: *resize, Adaptive: *adaptive}
	var err error
	if m.TeamSizes, err = parseInts(*teams); err != nil {
		fmt.Fprintf(errw, "checktool: -teams: %v\n", err)
		return 2
	}
	if m.Chunks, err = parseInts(*chunks); err != nil {
		fmt.Fprintf(errw, "checktool: -chunks: %v\n", err)
		return 2
	}

	kernels := check.Registry()
	if *kernel != "" {
		var keep []check.Kernel
		for _, k := range kernels {
			if strings.Contains(k.Name, *kernel) {
				keep = append(keep, k)
			}
		}
		if len(keep) == 0 {
			fmt.Fprintf(errw, "checktool: no kernel matches %q\n", *kernel)
			return 2
		}
		kernels = keep
	}
	if *verbose {
		for _, k := range kernels {
			fmt.Fprintf(out, "kernel %-20s n=%d steps=%d maxulps=%d schedules=%d tracked=%v\n",
				k.Name, k.N, k.Steps, k.MaxULPs, len(k.Schedules), k.Tracked != nil)
		}
	}

	failed := false
	rep := check.Run(kernels, m)
	fmt.Fprint(out, rep)
	if !rep.OK() {
		failed = true
	}

	if *deps {
		races := 0
		for _, res := range check.CheckDependences(kernels, *depWorkers) {
			races += len(res.Races)
			for _, r := range res.Races {
				fmt.Fprintf(out, "  RACE %s: %v\n", res.Kernel, r)
			}
		}
		fmt.Fprintf(out, "dependences: %d workers, %d races\n", *depWorkers, races)
		if races > 0 {
			failed = true
		}
	}

	if *selftest && !runSelftest(out, m, *depWorkers) {
		failed = true
	}

	if failed {
		fmt.Fprintln(out, "FAIL")
		return 1
	}
	fmt.Fprintln(out, "OK")
	return 0
}

// runSelftest proves the machinery has teeth: the seeded loop-carried
// dependence must fail the conformance harness on some multi-worker
// cell and be flagged by the dependence checker.
func runSelftest(out io.Writer, m check.Matrix, depWorkers int) bool {
	seeded := []check.Kernel{check.SeededDependence()}
	ok := true

	rep := check.Run(seeded, m)
	multi := false
	for _, w := range m.TeamSizes {
		if w > 1 {
			multi = true
		}
	}
	if rep.OK() && multi {
		fmt.Fprintln(out, "selftest: conformance harness MISSED the seeded dependence")
		ok = false
	} else {
		fmt.Fprintf(out, "selftest: harness caught the seeded dependence (%d failing cells, minimized to n=%d)\n",
			len(rep.Failures), minFailureN(rep))
	}

	if depWorkers > 1 {
		races := 0
		for _, res := range check.CheckDependences(seeded, depWorkers) {
			races += len(res.Races)
		}
		if races == 0 {
			fmt.Fprintln(out, "selftest: dependence checker MISSED the seeded dependence")
			ok = false
		} else {
			fmt.Fprintf(out, "selftest: checker flagged the seeded dependence (%d races)\n", races)
		}
	}
	return ok
}

func minFailureN(rep *check.Report) int {
	n := 0
	for _, f := range rep.Failures {
		if n == 0 || f.N < n {
			n = f.N
		}
	}
	return n
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d out of range", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
