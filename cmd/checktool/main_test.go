package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunCleanRegistry: the shipped kernels pass a reduced matrix and
// the dependence scan, and the tool exits 0.
func TestRunCleanRegistry(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(&out, &errw, []string{"-teams", "1,2,3", "-chunks", "1,5", "-depworkers", "3"})
	if code != 0 {
		t.Fatalf("exit %d, stderr %q, stdout:\n%s", code, errw.String(), out.String())
	}
	s := out.String()
	for _, want := range []string{"conformance:", "0 failures", "dependences:", "0 races", "OK"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunSelftest: with -selftest the tool demonstrates the seeded
// dependence is caught by both engines and still exits 0.
func TestRunSelftest(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(&out, &errw, []string{
		"-teams", "1,2", "-chunks", "1", "-kernel", "saxpy", "-selftest",
	})
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "harness caught the seeded dependence") {
		t.Errorf("selftest harness line missing:\n%s", s)
	}
	if !strings.Contains(s, "checker flagged the seeded dependence") {
		t.Errorf("selftest checker line missing:\n%s", s)
	}
}

// TestRunKernelFilter: an unknown filter is a usage error; a matching
// one narrows the run.
func TestRunKernelFilter(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-kernel", "no-such-kernel"}); code != 2 {
		t.Fatalf("unknown kernel filter: exit %d, want 2", code)
	}
	out.Reset()
	errw.Reset()
	code := run(&out, &errw, []string{"-teams", "2", "-chunks", "1", "-kernel", "sum-int", "-deps=false", "-v"})
	if code != 0 {
		t.Fatalf("filtered run failed: %s", out.String())
	}
	if !strings.Contains(out.String(), "1 kernels") {
		t.Errorf("filter did not narrow to one kernel:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "kernel sum-int-exact") {
		t.Errorf("-v did not list the kernel:\n%s", out.String())
	}
}

// TestRunBadFlags: malformed lists are usage errors.
func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-teams", "zero"},
		{"-teams", "0"},
		{"-chunks", ""},
		{"-not-a-flag"},
	} {
		var out, errw bytes.Buffer
		if code := run(&out, &errw, args); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}
