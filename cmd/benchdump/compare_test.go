package main

import (
	"math"
	"path/filepath"
	"testing"
)

func mkReport(series ...Series) Report {
	return Report{Schema: schemaVersion, Label: "t", Go: "gotest", Short: true, Series: series}
}

func TestCompareDirections(t *testing.T) {
	base := mkReport(
		Series{Name: "up", Value: 100, Better: Higher, Gate: true},
		Series{Name: "down", Value: 100, Better: Lower, Gate: true},
		Series{Name: "pin", Value: 100, Better: Exact, Gate: true},
		Series{Name: "wall", Value: 100, Better: Lower, Gate: false},
	)
	cases := []struct {
		name string
		cur  []Series
		want int
	}{
		{"all identical", []Series{
			{Name: "up", Value: 100}, {Name: "down", Value: 100},
			{Name: "pin", Value: 100}, {Name: "wall", Value: 100},
		}, 0},
		{"within tolerance", []Series{
			{Name: "up", Value: 85}, {Name: "down", Value: 115},
			{Name: "pin", Value: 110}, {Name: "wall", Value: 100},
		}, 0},
		{"good directions never fire", []Series{
			{Name: "up", Value: 300}, {Name: "down", Value: 1},
			{Name: "pin", Value: 100}, {Name: "wall", Value: 100},
		}, 0},
		{"higher dropped too far", []Series{
			{Name: "up", Value: 70}, {Name: "down", Value: 100},
			{Name: "pin", Value: 100}, {Name: "wall", Value: 100},
		}, 1},
		{"lower rose too far", []Series{
			{Name: "up", Value: 100}, {Name: "down", Value: 130},
			{Name: "pin", Value: 100}, {Name: "wall", Value: 100},
		}, 1},
		{"exact drifted either way", []Series{
			{Name: "up", Value: 100}, {Name: "down", Value: 100},
			{Name: "pin", Value: 70}, {Name: "wall", Value: 100},
		}, 1},
		{"ungated series never gates", []Series{
			{Name: "up", Value: 100}, {Name: "down", Value: 100},
			{Name: "pin", Value: 100}, {Name: "wall", Value: 9999},
		}, 0},
		{"dropped gated series fails", []Series{
			{Name: "up", Value: 100}, {Name: "down", Value: 100},
			{Name: "wall", Value: 100},
		}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if regs := compare(base, mkReport(tc.cur...), 0.20); len(regs) != tc.want {
				t.Errorf("got %d regressions %v, want %d", len(regs), regs, tc.want)
			}
		})
	}
}

func TestCompareNewSeriesPass(t *testing.T) {
	base := mkReport(Series{Name: "old", Value: 1, Better: Exact, Gate: true})
	cur := mkReport(
		Series{Name: "old", Value: 1, Better: Exact, Gate: true},
		Series{Name: "brand-new", Value: 42, Better: Exact, Gate: true},
	)
	if regs := compare(base, cur, 0.01); len(regs) != 0 {
		t.Errorf("new series should not regress: %v", regs)
	}
}

func TestRelDriftZeroBaseline(t *testing.T) {
	if d := relDrift(0, 0); d != 0 {
		t.Errorf("relDrift(0,0) = %v", d)
	}
	if d := relDrift(0, 1); math.IsInf(d, 0) || math.IsNaN(d) {
		t.Errorf("relDrift(0,1) = %v, want finite", d)
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	want := mkReport(
		Series{Name: "a", Value: 1.5, Unit: "x", Better: Higher, Gate: true},
		Series{Name: "b", Value: 2, Unit: "ns/op", Better: Lower, Gate: false},
	)
	if err := writeReport(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := loadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 2 || got.Series[0] != want.Series[0] || got.Series[1] != want.Series[1] {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
}

func TestLoadReportRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	r := mkReport()
	r.Schema = schemaVersion + 1
	if err := writeReport(path, r); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(path); err == nil {
		t.Error("loadReport accepted a future schema")
	}
}

// TestSuiteDeterministicSeries runs the real suite (short mode) and
// checks the gated sync-structure counts — the values the CI gate
// protects — come out at the paper's expected orders of magnitude.
func TestSuiteDeterministicSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the timed suite")
	}
	series := runSuite(true, "", func(string, ...any) {})
	by := make(map[string]Series, len(series))
	for _, s := range series {
		by[s.Name] = s
	}
	want := map[string]float64{
		"example1_outer_syncs_op":      1,
		"example2_separate_syncs_op":   2,
		"example2_merged_syncs_op":     1,
		"example3_child_syncs_op":      256,
		"example3_hoisted_syncs_op":    1,
		"analyze_table3_plateau_count": 7,
		"analyze_table3_p5_speedup":    5,
		"analyze_table3_p8_speedup":    7.5,
		"analyze_attribution_ok":       1,
		"example3_trace_units":         256,
		"example3_trace_syncs":         1,
	}
	for name, v := range want {
		s, ok := by[name]
		if !ok {
			t.Errorf("suite missing series %s", name)
			continue
		}
		if s.Value != v {
			t.Errorf("%s = %v, want %v", name, s.Value, v)
		}
		if !s.Gate {
			t.Errorf("%s should be gated", name)
		}
	}
	if by["example1_inner_syncs_op"].Value <= by["example1_outer_syncs_op"].Value {
		t.Error("inner-loop parallelization should cost more syncs than outer")
	}
	if by["f3d_step_syncs"].Value == 0 {
		t.Error("solver step recorded no sync events")
	}
	if !by["table4_sgi_59m_124p_speedup"].Gate || by["table4_sgi_59m_124p_speedup"].Value < 10 {
		t.Errorf("table4 speedup series wrong: %+v", by["table4_sgi_59m_124p_speedup"])
	}
	if _, ok := by["trace_overhead_pct"]; !ok {
		t.Error("suite missing trace_overhead_pct")
	}
}
