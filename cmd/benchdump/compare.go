package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// The benchmark trajectory file format. Every PR that touches
// performance-relevant code regenerates BENCH_PR<N>.json with this
// tool; CI gates the deterministic series against the committed
// baseline so model/simulator/sync-structure regressions fail the
// build while machine-dependent timings are recorded but never gated.

// schemaVersion bumps when Report's shape changes incompatibly.
const schemaVersion = 1

// Direction states which way a series is allowed to drift.
type Direction string

const (
	// Higher: larger is better; gate fires when the value drops more
	// than the tolerance below baseline.
	Higher Direction = "higher"
	// Lower: smaller is better; gate fires when the value rises more
	// than the tolerance above baseline.
	Lower Direction = "lower"
	// Exact: any relative drift beyond the tolerance fires, either way.
	Exact Direction = "exact"
)

// Series is one measured or computed scalar.
type Series struct {
	Name   string    `json:"name"`
	Value  float64   `json:"value"`
	Unit   string    `json:"unit"`
	Better Direction `json:"better"`
	// Gate marks series that are deterministic (analytic model values,
	// simulator outputs, sync-event counts) and therefore safe to fail
	// CI on. Wall-clock timings stay ungated: they track the host, not
	// the code.
	Gate bool `json:"gate"`
}

// Report is the whole dump. The metadata fields (Go, GoAMD64, ...)
// record the build environment for later forensics; compare() reads
// only Series, and loadReport's json.Unmarshal drops unknown keys, so
// adding metadata never invalidates committed baselines.
type Report struct {
	Schema int    `json:"schema"`
	Label  string `json:"label"`
	Go     string `json:"go"`
	// GoAMD64 is the GOAMD64 microarchitecture level the binary was
	// built for ("v1" when unset) — kernel timings are not comparable
	// across levels.
	GoAMD64 string   `json:"goamd64,omitempty"`
	Short   bool     `json:"short"`
	Series  []Series `json:"series"`
}

// goAMD64Level reports the GOAMD64 level this process was built with,
// defaulting to the toolchain default "v1". The env var is the best
// signal available: runtime exposes no GOAMD64 introspection, and CI
// exports it alongside the build.
func goAMD64Level() string {
	if v := os.Getenv("GOAMD64"); v != "" {
		return v
	}
	return "v1"
}

func loadReport(path string) (Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != schemaVersion {
		return Report{}, fmt.Errorf("%s: schema %d, this tool speaks %d", path, r.Schema, schemaVersion)
	}
	return r, nil
}

func writeReport(path string, r Report) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Regression describes one gated series outside tolerance.
type Regression struct {
	Name      string
	Base, New float64
	Drift     float64 // signed relative drift, (new-base)/|base|
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: baseline %.6g, now %.6g (%+.1f%%)", r.Name, r.Base, r.New, 100*r.Drift)
}

// compare gates every series marked Gate in the new report against the
// baseline. Series missing from the baseline pass (they are new in
// this PR); series present in the baseline but missing from the new
// report fail — a silently dropped measurement is itself a regression.
func compare(base, cur Report, tol float64) []Regression {
	baseBy := make(map[string]Series, len(base.Series))
	for _, s := range base.Series {
		baseBy[s.Name] = s
	}
	curBy := make(map[string]Series, len(cur.Series))
	for _, s := range cur.Series {
		curBy[s.Name] = s
	}

	var regs []Regression
	for _, b := range base.Series {
		if !b.Gate {
			continue
		}
		c, ok := curBy[b.Name]
		if !ok {
			regs = append(regs, Regression{Name: b.Name + " (series dropped)", Base: b.Value, New: math.NaN(), Drift: math.NaN()})
			continue
		}
		drift := relDrift(b.Value, c.Value)
		bad := false
		switch b.Better {
		case Higher:
			bad = drift < -tol
		case Lower:
			bad = drift > tol
		default: // Exact
			bad = math.Abs(drift) > tol
		}
		if bad {
			regs = append(regs, Regression{Name: b.Name, Base: b.Value, New: c.Value, Drift: drift})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Name < regs[j].Name })
	return regs
}

// filterPrefix keeps only the baseline series whose name starts with
// prefix — used when a partial suite runs, so series the run never
// attempted are not reported as dropped.
func filterPrefix(r Report, prefix string) Report {
	kept := make([]Series, 0, len(r.Series))
	for _, s := range r.Series {
		if len(s.Name) >= len(prefix) && s.Name[:len(prefix)] == prefix {
			kept = append(kept, s)
		}
	}
	r.Series = kept
	return r
}

// relDrift is the signed relative change from base to cur, with a
// floor on the denominator so a zero baseline still compares sanely.
func relDrift(base, cur float64) float64 {
	d := math.Abs(base)
	if d < 1e-12 {
		d = 1e-12
	}
	return (cur - base) / d
}
