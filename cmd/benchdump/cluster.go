package main

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/simclock"
)

// runClusterSeries benchmarks the distributed sharded-solve engine
// over in-process workers. The conformance series are deterministic
// booleans — sharded histories must be bitwise the single-node ones,
// including across a mid-solve worker loss — and gate in CI; the
// per-step timings and the resulting distributed speedup ride along
// ungated (they depend on the host).
func runClusterSeries(short bool, minDur time.Duration,
	logf func(format string, args ...any),
	gated func(name string, v float64, unit string, better Direction),
	ungated func(name string, v float64, unit string, better Direction)) {

	// --- Conformance on the canonical three-zone case.
	logf("cluster sharded solve (conformance):")
	const confSteps = 4
	c, ifaces := f3d.StackAlongJ("bench-conf", 20, 6, 5, []int{6, 12})
	cfg := f3d.DefaultConfig(c)
	ref := clusterReference(c, ifaces, cfg, confSteps)

	gated("cluster_conformance_2w", boolVal(shardedConforms(ref, c, ifaces, cfg, 2, false)), "bool", Exact)
	gated("cluster_conformance_3w", boolVal(shardedConforms(ref, c, ifaces, cfg, 3, false)), "bool", Exact)
	gated("cluster_failover_conformance", boolVal(shardedConforms(ref, c, ifaces, cfg, 3, true)), "bool", Exact)

	// --- Distributed speedup: the same solve on 1 vs 3 workers. The
	// shards step concurrently (one goroutine per worker inside the
	// lockstep fan-out), so on a multi-core host more workers buy
	// wall-clock — minus the boundary-plane exchange the single node
	// never pays. On a single-core host the series degenerates to the
	// distribution overhead (speedup ~1), which is why it rides
	// ungated.
	// Enough steps per solve that the lockstep stepping, not the
	// serial shard creation, dominates the measurement.
	n, kmax, lmax, cuts, steps := 60, 24, 20, []int{20, 40}, 10
	if short {
		n, kmax, lmax, cuts, steps = 30, 12, 10, []int{10, 20}, 8
	}
	logf("cluster sharded solve (speedup, %dx%dx%d):", n, kmax, lmax)
	bc, bifaces := f3d.StackAlongJ("bench-speed", n, kmax, lmax, cuts)
	bcfg := f3d.DefaultConfig(bc)
	perStep := func(workers int) float64 {
		coord := newFleet(workers, false)
		solve := func() {
			spec := cluster.SolveSpec{
				Job: "bench-speed", Zones: bc.Zones, Interfaces: bifaces,
				Config: bcfg, PulseAmp: 0.02, Steps: steps, CheckpointEvery: -1,
			}
			if _, err := coord.Solve(spec); err != nil {
				panic(fmt.Sprintf("benchdump: cluster solve (%d workers): %v", workers, err))
			}
		}
		return measure(minDur, solve) / float64(steps)
	}
	t1 := perStep(1)
	t3 := perStep(3)
	ungated("cluster_step_ns_1w", t1, "ns/step", Lower)
	ungated("cluster_step_ns_3w", t3, "ns/step", Lower)
	ungated("cluster_speedup_3w", t1/t3, "x", Higher)

	runClusterObsSeries(c, ifaces, cfg, minDur, logf, gated, ungated)
}

// runClusterObsSeries covers the cluster observability pipeline. The
// closure and straggler series are structural facts of the tracing
// design — worker spans nest inside the coordinator's RPC spans on
// one virtual clock, so the exact-sum attribution identity must close
// and every delayed step must name a straggler — and gate in CI. The
// disabled-overhead ratio is dimensionless (both sides run in this
// process) and gates like the kern_ ratios: attached-but-disabled
// tracers must cost one atomic load per site, not a step-time
// regression. The exchange-barrier share rides along ungated (its
// value tracks how far the clock driver ran ahead, not the code).
func runClusterObsSeries(c grid.Case, ifaces []f3d.Interface, cfg f3d.Config,
	minDur time.Duration,
	logf func(format string, args ...any),
	gated func(name string, v float64, unit string, better Direction),
	ungated func(name string, v float64, unit string, better Direction)) {

	logf("cluster observability (traced 3-worker solve):")
	const obsSteps = 4
	clk := simclock.NewVirtual(time.Unix(0, 0))
	tracer := obs.NewTracer(8192, clk)
	tracer.Enable()
	coord := cluster.New(cluster.Config{Clock: clk, Tracer: tracer, HeartbeatTTL: time.Hour})
	col := cluster.NewCollector(cluster.CollectorConfig{Clock: clk, Coord: tracer, Node: coord.Node()})
	workers := make([]*cluster.LocalWorker, 3)
	for i := range workers {
		id := fmt.Sprintf("ow%02d", i+1)
		workers[i] = cluster.NewLocalWorker(id, clk)
		workers[i].EnableTrace(8192)
		if err := coord.Register(id, workers[i]); err != nil {
			panic(fmt.Sprintf("benchdump: register %s: %v", id, err))
		}
		col.AddWorker(id, workers[i])
	}
	// Probe clocks before arming link delays: a virtual-clock sleep
	// with no advancing driver would park the probe forever.
	col.SyncClocks()
	for i, w := range workers {
		w.SetDelay(time.Duration(i+1) * 10 * time.Millisecond)
	}
	res, err := solveAdvancing(coord, clk, cluster.SolveSpec{
		Job: "bench-obs", Zones: c.Zones, Interfaces: ifaces,
		Config: cfg, PulseAmp: 0.02, Steps: obsSteps,
	})
	if err != nil {
		panic(fmt.Sprintf("benchdump: traced cluster solve: %v", err))
	}
	for _, w := range workers {
		w.SetDelay(0)
	}
	col.Pull()
	rep := analyze.ClusterAnalyze(col.Timeline(), analyze.ClusterConfig{CoordNode: coord.Node()})

	closed := rep.Closed && analyze.CheckClusterClosure(rep) == nil &&
		len(rep.Solves) == 1 && rep.Solves[0].Trace == res.Trace &&
		len(rep.Solves[0].Steps) == obsSteps
	stragglers := len(rep.Solves) == 1
	for _, s := range rep.Solves {
		for _, st := range s.Steps {
			if st.Straggler == "" || len(st.Workers) != len(workers) || st.Verdict != "confirmed" {
				stragglers = false
			}
		}
	}
	gated("cluster_obs_closure", boolVal(closed), "bool", Exact)
	gated("cluster_obs_straggler_named", boolVal(stragglers), "bool", Exact)
	ungated("cluster_obs_exchange_barrier_share", rep.ExchangeBarrierShare, "frac", Lower)

	// Attached-but-disabled tracers vs no tracers at all, same solve.
	logf("cluster observability (disabled-tracer overhead):")
	perStep := func(traced bool) float64 {
		var coord *cluster.Coordinator
		if traced {
			coord = cluster.New(cluster.Config{Tracer: obs.NewTracer(8192, simclock.Real{})})
			for i := 0; i < 3; i++ {
				id := fmt.Sprintf("bw%02d", i)
				w := cluster.NewLocalWorker(id, nil)
				w.EnableTrace(8192)
				w.Tracer().Disable()
				if err := coord.Register(id, w); err != nil {
					panic(fmt.Sprintf("benchdump: register %s: %v", id, err))
				}
			}
		} else {
			coord = newFleet(3, false)
		}
		solve := func() {
			spec := cluster.SolveSpec{
				Job: "bench-obs-overhead", Zones: c.Zones, Interfaces: ifaces,
				Config: cfg, PulseAmp: 0.02, Steps: obsSteps, CheckpointEvery: -1,
			}
			if _, err := coord.Solve(spec); err != nil {
				panic(fmt.Sprintf("benchdump: overhead solve: %v", err))
			}
		}
		return measure(minDur, solve) / float64(obsSteps)
	}
	tOff := perStep(false)
	tDis := perStep(true)
	gated("cluster_obs_disabled_overhead", tDis/tOff, "x", Lower)
	ungated("cluster_obs_step_ns_disabled", tDis, "ns/step", Lower)
}

// solveAdvancing runs a solve while advancing the virtual clock
// whenever the fleet is stuck on injected latency (the same driver
// the cluster tests use, minus testing.T).
func solveAdvancing(c *cluster.Coordinator, clk *simclock.Virtual, spec cluster.SolveSpec) (cluster.SolveResult, error) {
	type out struct {
		res cluster.SolveResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.Solve(spec)
		done <- out{res, err}
	}()
	deadline := time.After(60 * time.Second)
	for {
		select {
		case o := <-done:
			return o.res, o.err
		case <-deadline:
			return cluster.SolveResult{}, fmt.Errorf("traced solve did not terminate")
		default:
			if !clk.AdvanceToNext() {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
}

func boolVal(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}

// clusterReference is the single-node history the sharded runs must
// reproduce bitwise.
func clusterReference(c grid.Case, ifaces []f3d.Interface, cfg f3d.Config, steps int) []f3d.StepStats {
	cfg.Case = c
	cfg.Interfaces = ifaces
	s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{})
	if err != nil {
		panic(fmt.Sprintf("benchdump: cluster reference: %v", err))
	}
	defer s.Close()
	f3d.InitPulse(s, 0.02)
	out := make([]f3d.StepStats, steps)
	for i := range out {
		out[i] = s.Step()
	}
	return out
}

// benchLossy fails its worker's StepShard from the third call on —
// the deterministic mid-solve loss for the failover series.
type benchLossy struct {
	cluster.WorkerClient
	calls int
}

func (l *benchLossy) StepShard(req cluster.StepRequest) (cluster.StepResponse, error) {
	l.calls++
	if l.calls > 2 {
		return cluster.StepResponse{}, cluster.ErrWorkerDown
	}
	return l.WorkerClient.StepShard(req)
}

// newFleet builds a coordinator over in-process workers; with lossy
// set, worker 0 dies after its second lockstep call.
func newFleet(workers int, lossy bool) *cluster.Coordinator {
	coord := cluster.New(cluster.Config{})
	for i := 0; i < workers; i++ {
		id := fmt.Sprintf("bw%02d", i)
		var client cluster.WorkerClient = cluster.NewLocalWorker(id, nil)
		if lossy && i == 0 && workers >= 2 {
			client = &benchLossy{WorkerClient: client}
		}
		if err := coord.Register(id, client); err != nil {
			panic(fmt.Sprintf("benchdump: register %s: %v", id, err))
		}
	}
	return coord
}

// shardedConforms runs the sharded solve and reports bitwise equality
// with the reference (and, when a loss is injected, that the engine
// actually failed over).
func shardedConforms(ref []f3d.StepStats, c grid.Case, ifaces []f3d.Interface, cfg f3d.Config, workers int, lossy bool) bool {
	coord := newFleet(workers, lossy)
	res, err := coord.Solve(cluster.SolveSpec{
		Job: "bench-conf", Zones: c.Zones, Interfaces: ifaces,
		Config: cfg, PulseAmp: 0.02, Steps: len(ref),
	})
	if err != nil {
		return false
	}
	if lossy && res.Failovers < 1 {
		return false
	}
	for i := range ref {
		if math.Float64bits(res.History[i].Residual) != math.Float64bits(ref[i].Residual) ||
			math.Float64bits(res.History[i].MaxDelta) != math.Float64bits(ref[i].MaxDelta) {
			return false
		}
	}
	return true
}
