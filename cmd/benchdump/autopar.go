package main

import (
	"fmt"
	"time"

	"repro/internal/autopar/pipeline"
	"repro/internal/check"
	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/parloop"
)

// runAutoparSeries emits the evidence-driven planner's benchmark
// series. The gates are deterministic properties of the pipeline —
// plan validity on a real traced solver run, exact decision counts on
// a synthetic workload exercising every action, the fixed point under
// re-planning, the Tracker-evidence doacross demotion, and bitwise
// conformance of a plan-shaped solver against the serial reference —
// so they hold on any host. Planning latency and the shaped step time
// ride along ungated.
func runAutoparSeries(short bool, minDur time.Duration, logf func(format string, args ...any),
	gated func(name string, v float64, unit string, better Direction),
	ungated func(name string, v float64, unit string, better Direction)) {

	logf("auto-parallelization pipeline:")

	// --- A real phase-traced solver run, planned and validated.
	tr := obs.NewTracer(1<<16, nil)
	tr.Enable()
	team := parloop.NewTeam(benchWorkers)
	defer team.Close()
	team.SetTracer(tr, "autopar")
	cfg := f3d.DefaultConfig(grid.Single(12, 10, 9))
	s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{
		Team: team, Phases: f3d.AllPhases(), PhaseTrace: "autopar",
	})
	if err != nil {
		panic(fmt.Sprintf("benchdump: autopar solver: %v", err))
	}
	f3d.InitPulse(s, 0.01)
	for i := 0; i < 3; i++ {
		s.Step()
	}
	s.Close()
	team.SetTracer(nil, "")

	pcfg := pipeline.Config{}
	ev := pipeline.FromTrace(tr.Events(), analyze.Config{},
		pipeline.F3DStructure("autopar"), "benchdump")
	planValid := 1.0
	p := pipeline.PlanFromEvidence(ev, pcfg)
	if err := pipeline.Validate(p, ev, pcfg); err != nil {
		logf("  live plan INVALID: %v", err)
		planValid = 0
	}
	gated("autopar_plan_valid", planValid, "bool", Exact)
	// The default structure phase-traces rhs and both sweeps; bc stays
	// serial and emits nothing, so the planner must see exactly three
	// loops.
	gated("autopar_plan_loops", float64(len(p.Loops)), "loops", Exact)
	ungated("autopar_plan_ns", measure(minDur, func() {
		pipeline.PlanFromEvidence(ev, pcfg)
	}), "ns/plan", Lower)

	// --- Exact decision counts on the synthetic all-actions workload:
	// timing never enters, so each count gates hard.
	mk := func(name string, share, wps float64, mut func(*pipeline.LoopEvidence)) pipeline.LoopEvidence {
		l := pipeline.LoopEvidence{
			Name: name, RankShare: share, WorkNs: int64(share * 1e9),
			Workers: benchWorkers, SyncEvents: 10,
			WorkPerSyncCycles: wps, MinWorkCycles: 50_000, BudgetPass: wps >= 50_000,
			Static: pipeline.StaticParallel,
		}
		if mut != nil {
			mut(&l)
		}
		return l
	}
	sev := pipeline.Evidence{Source: "benchdump-synthetic", Procs: benchWorkers, Loops: []pipeline.LoopEvidence{
		mk("hot", 0.3, 200_000, nil),
		mk("racy", 0.2, 200_000, func(l *pipeline.LoopEvidence) {
			l.Static = pipeline.StaticUnknown
			l.Tracked = true
			l.Conflicts = []pipeline.Conflict{{Array: "q", Index: 3, Kind: "write-write"}}
		}),
		mk("mixed", 0.25, 200_000, func(l *pipeline.LoopEvidence) {
			l.Parts = []pipeline.PartEvidence{
				{Name: "par", WorkFrac: 0.7, Static: pipeline.StaticParallel},
				{Name: "ser", WorkFrac: 0.3, Static: pipeline.StaticSerial},
			}
		}),
		mk("groupbig", 0.15, 120_000, func(l *pipeline.LoopEvidence) { l.Group = "fuse" }),
		mk("groupsmall", 0.08, 20_000, func(l *pipeline.LoopEvidence) { l.Group = "fuse" }),
		mk("cold", 0.002, 100_000, nil),
	}}
	sp := pipeline.PlanFromEvidence(sev, pcfg)
	gated("autopar_plan_parallelize", float64(sp.Count(pipeline.Parallelize)), "loops", Exact)
	gated("autopar_plan_serial", float64(sp.Count(pipeline.Serial)), "loops", Exact)
	gated("autopar_plan_merge", float64(sp.Count(pipeline.Merge)), "loops", Exact)
	gated("autopar_plan_fission", float64(sp.Count(pipeline.Fission)), "loops", Exact)

	// --- Fixed point: re-planning from applied evidence proposes no
	// changes, on both the live and the synthetic evidence.
	fixed := 1.0
	for _, e := range []pipeline.Evidence{ev, sev} {
		pl := pipeline.PlanFromEvidence(e, pcfg)
		next := pipeline.PlanFromEvidence(pipeline.Applied(e, pl, pcfg), pcfg)
		if ch := pipeline.Changes(pl, next); len(ch) != 0 {
			logf("  plan not a fixed point: %v", ch)
			fixed = 0
		}
	}
	gated("autopar_plan_fixed_point", fixed, "bool", Exact)

	// --- The §2 doacross misuse, demoted by real Tracker evidence.
	k := check.SeededDependence()
	tk := check.NewTracker(team, 0)
	k.Tracked(tk, team, k.N)
	races := tk.Races()
	dev := pipeline.Evidence{
		Source: "benchdump-doacross",
		Procs:  benchWorkers,
		Loops: []pipeline.LoopEvidence{{
			Name: "doacross", RankShare: 0.95, WorkNs: 1_000_000,
			Workers: benchWorkers, SyncEvents: 4,
			WorkPerSyncCycles: 250_000, MinWorkCycles: 50_000, BudgetPass: true,
			Static: pipeline.StaticUnknown,
		}},
	}
	dev.AddConflicts("doacross", "", check.PlanConflicts(races))
	dp := pipeline.PlanFromEvidence(dev, pcfg)
	demoted := 0.0
	if d, ok := dp.Decision("doacross"); ok && d.Action == pipeline.Serial && len(races) > 0 {
		demoted = 1
	}
	gated("autopar_doacross_serial", demoted, "bool", Exact)

	// --- Conformance: a plan-shaped solver (fissioned RHS, the
	// furthest transform from the default structure) reproduces the
	// serial reference's residual history bitwise.
	steps := 5
	ref, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{})
	if err != nil {
		panic(fmt.Sprintf("benchdump: autopar reference: %v", err))
	}
	defer ref.Close()
	f3d.InitPulse(ref, 0.01)
	shape := f3d.StepShape{RHSJK: true, RHSL: true, SweepJK: true, SweepL: true, FissionRHS: true}
	shaped, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{
		Team: team, Phases: f3d.AllPhases(), Shape: f3d.NewShapeCfg(shape),
	})
	if err != nil {
		panic(fmt.Sprintf("benchdump: autopar shaped solver: %v", err))
	}
	defer shaped.Close()
	f3d.InitPulse(shaped, 0.01)
	bitwise := 1.0
	for i := 0; i < steps; i++ {
		want := ref.Step().Residual
		got := shaped.Step().Residual
		if got != want {
			logf("  shaped step %d residual %.17g != serial %.17g", i, got, want)
			bitwise = 0
		}
	}
	gated("autopar_conform_bitwise", bitwise, "bool", Exact)
	ungated("autopar_shaped_step_ns", measure(minDur, func() { shaped.Step() }), "ns/step", Lower)
}
