package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/adapt"
	"repro/internal/parloop"
	"repro/internal/sched"
)

// runAdaptiveSeries emits the adaptive-scheduling controller's
// benchmark series. The headline gates run against the deterministic
// cost simulator, so they are bit-identical across hosts and safe to
// gate hard in CI: on each ragged workload the controller must
// converge within its worst-case horizon and land within hysteresis of
// the best fixed {schedule, chunk} configuration in the space. A real
// controller-driven loop (the parloop.LoopCfg reconfigure seam under a
// live scheduler) rides along as an ungated wall-clock series.
func runAdaptiveSeries(minDur time.Duration, logf func(format string, args ...any),
	gated func(name string, v float64, unit string, better Direction),
	ungated func(name string, v float64, unit string, better Direction)) {

	logf("adaptive controller (deterministic sim):")
	chunks := []int{1, 8, 64}
	cfg := adapt.Config{Procs: benchWorkers, M: 96, Chunks: chunks}
	horizon := adapt.ConvergenceHorizon(cfg)

	workloads := []struct {
		tag string
		w   adapt.Workload
	}{
		{"ragged_a", adapt.Ragged(96, 800, 3, 11)},
		{"ragged_b", adapt.Ragged(96, 1200, 5, 29)},
	}
	for _, wl := range workloads {
		s := adapt.Sim{W: wl.w}
		// Start from the naive static deal — the paper's default — so
		// the series measures what the feedback loop earns on top.
		ctrl := adapt.New(wl.tag, adapt.Choice{Sched: parloop.Static, Chunk: 1, Workers: benchWorkers}, cfg)
		out := adapt.RunSim(s, ctrl, horizon+40)

		converged := 0.0
		if out.ConvergedAt >= 0 && out.ConvergedAt <= horizon {
			converged = 1
		}
		best := 0.0
		for _, score := range adapt.StaticScores(s, out.Steps, benchWorkers, parloop.Schedules(), chunks) {
			if best == 0 || score < best {
				best = score
			}
		}
		ratio := out.FinalScore / best

		gated("adaptive_"+wl.tag+"_converged", converged, "bool", Exact)
		gated("adaptive_"+wl.tag+"_vs_best_static", ratio, "ratio", Lower)
		ungated("adaptive_"+wl.tag+"_converge_steps", float64(out.ConvergedAt), "steps", Lower)
	}

	// Real execution of the seam the sim models: an adaptive LoopJob
	// under a live scheduler, re-picking {schedule, chunk, workers}
	// per step through a parloop.LoopCfg and Team.Resize. Wall time is
	// host-dependent, so this series is informational.
	logf("adaptive controller (real loop under scheduler):")
	steps := 24
	if minDur < time.Second {
		steps = 8
	}
	sch := sched.New(sched.Config{Procs: benchWorkers})
	defer sch.Close()
	job, err := adapt.NewLoopJob("bench-adaptive", 96, steps, 400, 11, benchWorkers, nil, nil)
	if err != nil {
		panic(fmt.Sprintf("benchdump: adaptive job: %v", err))
	}
	start := time.Now()
	h, err := sch.Submit(job)
	if err != nil {
		panic(fmt.Sprintf("benchdump: adaptive submit: %v", err))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := h.Wait(ctx); err != nil {
		panic(fmt.Sprintf("benchdump: adaptive run: %v", err))
	}
	wall := time.Since(start)
	st := job.Controller().Status()
	ungated("adaptive_real_ns_step", float64(wall.Nanoseconds())/float64(steps), "ns/step", Lower)
	ungated("adaptive_real_decisions", float64(len(st.Decisions)), "decisions", Higher)
}
