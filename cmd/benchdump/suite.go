package main

import (
	"fmt"
	"math"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/parloop"
	"repro/internal/sim"
)

// benchWorkers pins the team size so the gated sync-event counts do
// not depend on the host's core count.
const benchWorkers = 4

// measure times f in a closed loop for at least minDur (after one
// warm-up call) and returns nanoseconds per call.
func measure(minDur time.Duration, f func()) float64 {
	f()
	n := 0
	start := time.Now()
	for time.Since(start) < minDur {
		f()
		n++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// syncsPerOp runs f once against a zeroed sync-event counter and
// returns how many synchronization events it cost.
func syncsPerOp(team *parloop.Team, f func()) float64 {
	team.ResetSyncEvents()
	f()
	return float64(team.SyncEvents())
}

// runSuite produces the full series list. In short mode the timed
// loops run ~100ms each and the solver case shrinks; the deterministic
// series are identical either way except f3d_step_syncs, which tracks
// the case (which is why Short is recorded in the report and compared
// against the baseline's). A non-empty traceOut additionally dumps the
// traced Example 3 run as JSONL for tracetool / speedscope in CI.
func runSuite(short bool, traceOut string, logf func(format string, args ...any)) []Series {
	minDur := time.Second
	caseScale := 0.22
	if short {
		minDur = 100 * time.Millisecond
		caseScale = 0.10
	}

	var out []Series
	gated := func(name string, v float64, unit string, better Direction) {
		out = append(out, Series{Name: name, Value: v, Unit: unit, Better: better, Gate: true})
		logf("  %-36s %14.6g %-12s [gated %s]", name, v, unit, better)
	}
	ungated := func(name string, v float64, unit string, better Direction) {
		out = append(out, Series{Name: name, Value: v, Unit: unit, Better: better, Gate: false})
		logf("  %-36s %14.6g %-12s [ungated]", name, v, unit)
	}
	timed := func(name string, v float64, unit string) {
		ungated(name, v, unit, Lower)
	}

	// --- Analytic model (Tables 1, 3; Figure 1): exact reproductions.
	logf("model:")
	t1 := model.Table1()
	gated("table1_min_work_p128_sync1e6", t1[3][2], "cycles", Exact)
	t3 := model.Table3()
	gated("table3_speedup_p15", t3[len(t3)-1].Speedup, "x", Higher)
	fig1 := model.Figure1Series()
	gated("figure1_n45_p44_speedup", fig1[4][43], "x", Higher)

	// --- Calibrated simulator (Table 4): the paper's headline rows.
	logf("simulator:")
	oneM, fiftyNineM := sim.Table4()
	gated("table4_sgi_1m_1p_steps_hr", oneM[0].Sgi.StepsPerHour, "steps/hr", Higher)
	last := fiftyNineM[len(fiftyNineM)-1]
	gated("table4_sgi_59m_124p_steps_hr", last.Sgi.StepsPerHour, "steps/hr", Higher)
	gated("table4_sgi_59m_124p_speedup", last.Sgi.Speedup, "x", Higher)

	// --- Examples 1-3: synchronization structure of the paper's three
	// loop transformations. The counts are the point; the timings ride
	// along ungated.
	team := parloop.NewTeam(benchWorkers)
	defer team.Close()

	logf("example 1 (inner vs outer parallel loop):")
	const e1Outer, e1Inner = 64, 4096
	data := make([]float64, e1Outer*e1Inner)
	e1Body := func(o, i int) {
		v := data[o*e1Inner+i]
		data[o*e1Inner+i] = v*v*0.5 + v + 1
	}
	e1In := func() {
		for o := 0; o < e1Outer; o++ {
			team.For(e1Inner, func(i int) { e1Body(o, i) })
		}
	}
	e1Out := func() {
		team.For(e1Outer, func(o int) {
			for i := 0; i < e1Inner; i++ {
				e1Body(o, i)
			}
		})
	}
	gated("example1_inner_syncs_op", syncsPerOp(team, e1In), "syncs/op", Lower)
	gated("example1_outer_syncs_op", syncsPerOp(team, e1Out), "syncs/op", Lower)
	timed("example1_outer_ns_op", measure(minDur, e1Out), "ns/op")

	logf("example 2 (separate vs merged regions):")
	const e2N = 1 << 16
	a := make([]float64, e2N)
	c := make([]float64, e2N)
	e2Sep := func() {
		team.For(e2N, func(j int) { a[j] = float64(j) * 0.5 })
		team.For(e2N, func(j int) { c[j] = a[j] + 1 })
	}
	e2Merged := func() {
		team.Region(func(ctx *parloop.WorkerCtx) {
			ctx.For(e2N, func(j int) { a[j] = float64(j) * 0.5 })
			ctx.For(e2N, func(j int) { c[j] = a[j] + 1 })
		})
	}
	gated("example2_separate_syncs_op", syncsPerOp(team, e2Sep), "syncs/op", Lower)
	gated("example2_merged_syncs_op", syncsPerOp(team, e2Merged), "syncs/op", Lower)

	logf("example 3 (child regions vs hoisted parent):")
	const e3Outer, e3Inner = 256, 512
	var sink atomic.Int64
	e3Sub := func(j int) int64 {
		s := int64(0)
		for i := 0; i < e3Inner; i++ {
			s += int64(i ^ j)
		}
		return s
	}
	e3Child := func() {
		for j := 0; j < e3Outer; j++ {
			team.ForChunked(e3Inner, func(lo, hi int) {
				s := int64(0)
				for i := lo; i < hi; i++ {
					s += int64(i ^ j)
				}
				sink.Add(s)
			})
		}
	}
	e3Hoisted := func() {
		team.For(e3Outer, func(j int) { sink.Add(e3Sub(j)) })
	}
	gated("example3_child_syncs_op", syncsPerOp(team, e3Child), "syncs/op", Lower)
	gated("example3_hoisted_syncs_op", syncsPerOp(team, e3Hoisted), "syncs/op", Lower)
	e3Base := measure(minDur, e3Hoisted)
	timed("example3_hoisted_ns_op", e3Base, "ns/op")

	// --- Tracing overhead: the acceptance number. Attach a disabled
	// tracer to the team and rerun the Example 3 hoisted loop; the
	// instrumentation must cost one atomic load per region/chunk, so
	// the drift stays in the noise (<5%).
	tr := obs.NewTracer(1024, nil)
	team.SetTracer(tr, "benchdump")
	e3Traced := measure(minDur, e3Hoisted)
	team.SetTracer(nil, "")
	overhead := 100 * (e3Traced - e3Base) / e3Base
	out = append(out, Series{Name: "trace_overhead_pct", Value: overhead, Unit: "%", Better: Lower, Gate: false})
	logf("tracing (disabled) overhead on example3_hoisted: %.2f%% (%.6g -> %.6g ns/op) [ungated]",
		overhead, e3Base, e3Traced)

	// --- Trace analysis: deterministic facts the analyzer derives from
	// (a) the idealized Table 3 sweep and (b) a real traced run of the
	// Example 3 hoisted loop. These gate the diagnosis pipeline itself:
	// if event emission, critical-path reconstruction or plateau
	// detection drifts, CI fails here.
	logf("trace analysis (Table 3 sweep):")
	sizes := make([]int, 15)
	for i := range sizes {
		sizes[i] = i + 1
	}
	simEvents := analyze.StairStepTrace("table3", 15, sizes,
		time.Millisecond, 100*time.Microsecond, time.Date(2001, 9, 1, 0, 0, 0, 0, time.UTC))
	simRep := analyze.Analyze(simEvents, analyze.Config{})
	gated("analyze_table3_plateau_count", float64(len(simRep.Plateaus)), "plateaus", Exact)
	var p5, p8 float64
	for _, c := range simRep.Occupancy {
		switch c.Workers {
		case 5:
			p5 = c.MeasuredSpeedup
		case 8:
			p8 = c.MeasuredSpeedup
		}
	}
	gated("analyze_table3_p5_speedup", p5, "x", Exact)
	gated("analyze_table3_p8_speedup", p8, "x", Exact)
	attributionOK := 1.0
	for _, l := range simRep.Loops {
		if l.Attribution.WallNs > 0 &&
			math.Abs(float64(l.Attribution.ResidualNs))/float64(l.Attribution.WallNs) > 0.005 {
			attributionOK = 0
		}
	}
	gated("analyze_attribution_ok", attributionOK, "bool", Exact)

	logf("trace analysis (Example 3 traced run):")
	team.SetTracer(tr, "example3")
	tr.Enable()
	e3Hoisted()
	tr.Disable()
	team.SetTracer(nil, "")
	liveEvents := tr.Events()
	liveRep := analyze.Analyze(liveEvents, analyze.Config{})
	var e3Units, e3Syncs float64
	for _, l := range liveRep.Loops {
		if l.Name == "example3" {
			e3Units = float64(l.Units)
			e3Syncs = float64(l.SyncEvents)
		}
	}
	gated("example3_trace_units", e3Units, "units", Exact)
	gated("example3_trace_syncs", e3Syncs, "syncs", Exact)
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			panic(fmt.Sprintf("benchdump: writing trace: %v", err))
		}
		if err := tr.WriteJSONL(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			panic(fmt.Sprintf("benchdump: writing trace: %v", err))
		}
		logf("wrote %s (%d events)", traceOut, len(liveEvents))
	}
	tr.Reset()

	// --- Real solver: sync events per step and step latency.
	logf("f3d cache solver (scale %.2f):", caseScale)
	cfg := f3d.DefaultConfig(grid.Scaled(grid.Paper1M(), caseScale))
	s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{Team: team, Phases: f3d.AllPhases()})
	if err != nil {
		panic(fmt.Sprintf("benchdump: building solver: %v", err))
	}
	defer s.Close()
	f3d.InitPulse(s, 0.02)
	step := func() { s.Step() }
	gated("f3d_step_syncs", syncsPerOp(team, step), "syncs/step", Lower)
	timed("f3d_step_ns", measure(minDur, step), "ns/step")

	// --- The sync cost itself, and the Table 1 criterion it implies on
	// a hypothetical 2-GHz processor.
	stats := parloop.MeasureSyncCost(team, 100)
	timed("sync_cost_ns", float64(stats.PerSync.Nanoseconds()), "ns/sync")

	// --- Adaptive scheduling: deterministic controller-vs-static gates
	// plus a real reconfiguring loop under the scheduler.
	runAdaptiveSeries(minDur, logf, gated, ungated)

	// --- Auto-parallelization pipeline: plan validity, decision
	// counts, fixed point, doacross demotion, shaped-solver
	// conformance.
	runAutoparSeries(short, minDur, logf, gated, ungated)

	// --- Distributed sharded solve: conformance gates plus the
	// cluster-level speedup series.
	runClusterSeries(short, minDur, logf, gated, ungated)

	// --- Tuned inner-loop kernel layer: per-kernel timings, MFLOPS,
	// allocation counts and tuned-vs-scalar speedup ratios.
	runKernelSeries(short, minDur, logf, gated, ungated)

	return out
}
