package main

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/parloop"
)

// The kern_ series: per-kernel measurements of the tuned inner-loop
// layer. Wall-clock and MFLOPS numbers are recorded ungated (they
// track the host), but three deterministic properties gate CI:
//
//   - kern_*_allocs_op: the hot serial kernels must stay
//     allocation-free (Exact, 0).
//   - kern_*_speedup: tuned-vs-scalar ratios are dimensionless — both
//     sides run on the same machine in the same process — so a tuned
//     kernel silently decaying back to scalar speed fails the gate
//     even though neither absolute timing is gated.
//   - kern_*_bitwise: the tuned kernel must reproduce the scalar bits
//     on live data, the same contract the conformance matrix enforces.
//
// MFLOPS use nominal algorithmic flop counts (8 per tridiagonal row:
// one divide, two multiplies, two subtracts forward; one multiply,
// one subtract, one divide back — counting divides as one; 19 per
// pentadiagonal row for the two-element elimination), so they are
// comparable against the paper's reported per-kernel rates.
const (
	tridiagFlopsPerRow   = 8
	pentadiagFlopsPerRow = 19
)

// kernOrder is the system order the solver kernels are timed at —
// long enough to amortize call overhead, short enough to stay in L1
// like the solver's pencil lines do.
const kernOrder = 64

// runKernelSuite produces the kern_ series on their own collector, so
// both the full suite and `-suite kernels` can use it.
func runKernelSuite(short bool, logf func(format string, args ...any)) []Series {
	minDur := time.Second
	if short {
		minDur = 100 * time.Millisecond
	}
	var out []Series
	gated := func(name string, v float64, unit string, better Direction) {
		out = append(out, Series{Name: name, Value: v, Unit: unit, Better: better, Gate: true})
		logf("  %-36s %14.6g %-12s [gated %s]", name, v, unit, better)
	}
	ungated := func(name string, v float64, unit string, better Direction) {
		out = append(out, Series{Name: name, Value: v, Unit: unit, Better: better, Gate: false})
		logf("  %-36s %14.6g %-12s [ungated]", name, v, unit)
	}
	runKernelSeries(short, minDur, logf, gated, ungated)
	return out
}

// kernBands fills one 5-lane batch of diagonally dominant bands plus
// pristine copies, so timed loops can restore the inputs the solvers
// destroy.
func kernBands(n int, seed float64) (work, ref [linalg.Lanes][]float64) {
	for l := 0; l < linalg.Lanes; l++ {
		work[l] = make([]float64, n)
		ref[l] = make([]float64, n)
		for i := 0; i < n; i++ {
			ref[l][i] = math.Sin(seed + float64(l) + 2.3*float64(i))
		}
		copy(work[l], ref[l])
	}
	return
}

func restore(work, ref *[linalg.Lanes][]float64) {
	for l := range work {
		copy(work[l], ref[l])
	}
}

// dominant shifts a band set onto the diagonal so elimination is
// well-conditioned.
func dominant(b *[linalg.Lanes][]float64, shift float64) {
	for l := range b {
		for i := range b[l] {
			b[l][i] = shift + 0.5*b[l][i]
		}
	}
}

func bitsEqual(x, y [linalg.Lanes][]float64) float64 {
	for l := range x {
		for i := range x[l] {
			if math.Float64bits(x[l][i]) != math.Float64bits(y[l][i]) {
				return 0
			}
		}
	}
	return 1
}

func runKernelSeries(short bool, minDur time.Duration, logf func(format string, args ...any),
	gated, ungated func(name string, v float64, unit string, better Direction)) {

	timed := func(name string, v float64, unit string) { ungated(name, v, unit, Lower) }

	// --- Lane-batched tridiagonal solve.
	logf("kernels: tridiagonal batch (order %d, %d lanes):", kernOrder, linalg.Lanes)
	a, a0 := kernBands(kernOrder, 1)
	b, b0 := kernBands(kernOrder, 2)
	c, c0 := kernBands(kernOrder, 3)
	d, d0 := kernBands(kernOrder, 4)
	dominant(&b0, 3)
	triScalar := func() {
		restore(&a, &a0)
		restore(&b, &b0)
		restore(&c, &c0)
		restore(&d, &d0)
		for l := 0; l < linalg.Lanes; l++ {
			linalg.SolveTridiag(a[l], b[l], c[l], d[l])
		}
	}
	triBatch := func() {
		restore(&a, &a0)
		restore(&b, &b0)
		restore(&c, &c0)
		restore(&d, &d0)
		linalg.SolveTridiag5(&a, &b, &c, &d, kernOrder)
	}
	triScalar()
	var triRef, triOut [linalg.Lanes][]float64
	for l := range triRef {
		triRef[l] = append([]float64(nil), d[l]...)
	}
	triBatch()
	for l := range triOut {
		triOut[l] = append([]float64(nil), d[l]...)
	}
	gated("kern_tridiag_batch5_bitwise", bitsEqual(triRef, triOut), "bool", Exact)
	nsTriScalar := measure(minDur, triScalar)
	nsTriBatch := measure(minDur, triBatch)
	triFlops := float64(tridiagFlopsPerRow * kernOrder * linalg.Lanes)
	timed("kern_tridiag_scalar_ns_op", nsTriScalar, "ns/op")
	timed("kern_tridiag_batch5_ns_op", nsTriBatch, "ns/op")
	ungated("kern_tridiag_batch5_mflops", triFlops/nsTriBatch*1e3, "MFLOPS", Higher)
	gated("kern_tridiag_batch5_speedup", nsTriScalar/nsTriBatch, "x", Higher)
	gated("kern_tridiag_batch5_allocs_op", testing.AllocsPerRun(20, triBatch), "allocs/op", Exact)

	// --- Lane-batched pentadiagonal solve.
	logf("kernels: pentadiagonal batch (order %d, %d lanes):", kernOrder, linalg.Lanes)
	pe, pe0 := kernBands(kernOrder, 5)
	pa, pa0 := kernBands(kernOrder, 6)
	pb, pb0 := kernBands(kernOrder, 7)
	pc, pc0 := kernBands(kernOrder, 8)
	pf, pf0 := kernBands(kernOrder, 9)
	pd, pd0 := kernBands(kernOrder, 10)
	dominant(&pb0, 4)
	pentaRestore := func() {
		restore(&pe, &pe0)
		restore(&pa, &pa0)
		restore(&pb, &pb0)
		restore(&pc, &pc0)
		restore(&pf, &pf0)
		restore(&pd, &pd0)
	}
	pentaScalar := func() {
		pentaRestore()
		for l := 0; l < linalg.Lanes; l++ {
			linalg.SolvePentadiag(pe[l], pa[l], pb[l], pc[l], pf[l], pd[l])
		}
	}
	pentaBatch := func() {
		pentaRestore()
		linalg.SolvePentadiag5(&pe, &pa, &pb, &pc, &pf, &pd, kernOrder)
	}
	pentaScalar()
	var pentaRef, pentaOut [linalg.Lanes][]float64
	for l := range pentaRef {
		pentaRef[l] = append([]float64(nil), pd[l]...)
	}
	pentaBatch()
	for l := range pentaOut {
		pentaOut[l] = append([]float64(nil), pd[l]...)
	}
	gated("kern_pentadiag_batch5_bitwise", bitsEqual(pentaRef, pentaOut), "bool", Exact)
	nsPentaScalar := measure(minDur, pentaScalar)
	nsPentaBatch := measure(minDur, pentaBatch)
	pentaFlops := float64(pentadiagFlopsPerRow * kernOrder * linalg.Lanes)
	timed("kern_pentadiag_scalar_ns_op", nsPentaScalar, "ns/op")
	timed("kern_pentadiag_batch5_ns_op", nsPentaBatch, "ns/op")
	ungated("kern_pentadiag_batch5_mflops", pentaFlops/nsPentaBatch*1e3, "MFLOPS", Higher)
	gated("kern_pentadiag_batch5_speedup", nsPentaScalar/nsPentaBatch, "x", Higher)
	gated("kern_pentadiag_batch5_allocs_op", testing.AllocsPerRun(20, pentaBatch), "allocs/op", Exact)

	// --- Planar (vector-layout) tridiagonal solve.
	const planarRows, planarSys = 64, 32
	logf("kernels: planar tridiagonal (%d rows x %d systems):", planarRows, planarSys)
	planar := func(seed float64) (work, ref []float64) {
		work = make([]float64, planarRows*planarSys)
		ref = make([]float64, planarRows*planarSys)
		for i := range ref {
			ref[i] = math.Sin(seed + 1.7*float64(i))
		}
		copy(work, ref)
		return
	}
	qa, qa0 := planar(11)
	qb, qb0 := planar(12)
	qc, qc0 := planar(13)
	qd, qd0 := planar(14)
	for i := range qb0 {
		qb0[i] = 3 + 0.5*qb0[i]
	}
	planarRestore := func() {
		copy(qa, qa0)
		copy(qb, qb0)
		copy(qc, qc0)
		copy(qd, qd0)
	}
	planarScalar := func() {
		planarRestore()
		linalg.SolveTridiagPlanar(qa, qb, qc, qd, planarRows, planarSys)
	}
	planarTuned := func() {
		planarRestore()
		linalg.SolveTridiagPlanarTuned(qa, qb, qc, qd, planarRows, planarSys)
	}
	planarScalar()
	planarRef := append([]float64(nil), qd...)
	planarTuned()
	planarBits := 1.0
	for i := range qd {
		if math.Float64bits(qd[i]) != math.Float64bits(planarRef[i]) {
			planarBits = 0
			break
		}
	}
	gated("kern_planar_tuned_bitwise", planarBits, "bool", Exact)
	nsPlanarScalar := measure(minDur, planarScalar)
	nsPlanarTuned := measure(minDur, planarTuned)
	planarFlops := float64(tridiagFlopsPerRow * planarRows * planarSys)
	timed("kern_planar_scalar_ns_op", nsPlanarScalar, "ns/op")
	timed("kern_planar_tuned_ns_op", nsPlanarTuned, "ns/op")
	ungated("kern_planar_tuned_mflops", planarFlops/nsPlanarTuned*1e3, "MFLOPS", Higher)
	gated("kern_planar_tuned_speedup", nsPlanarScalar/nsPlanarTuned, "x", Higher)
	gated("kern_planar_tuned_allocs_op", testing.AllocsPerRun(20, planarTuned), "allocs/op", Exact)

	// --- Slice reductions: the unrolled forms against the strict
	// scalar folds. The sums reassociate, so no bitwise gate — the
	// conformance matrix bounds them in ULPs instead; max is
	// grouping-insensitive and gates bitwise.
	const redN = 4096
	logf("kernels: slice reductions (n=%d):", redN)
	x := make([]float64, redN)
	y := make([]float64, redN)
	for i := range x {
		x[i] = math.Sin(15 + 1.3*float64(i))
		y[i] = math.Cos(16 + 0.9*float64(i))
	}
	var sink float64
	scalarSum := func() {
		s := 0.0
		for _, v := range x {
			s += v
		}
		sink = s
	}
	scalarMax := func() {
		m := math.Inf(-1)
		for _, v := range x {
			if v > m {
				m = v
			}
		}
		sink = m
	}
	tunedSum := func() { sink = parloop.SumSliceSerial(x) }
	tunedDot := func() { sink = parloop.DotSliceSerial(x, y) }
	tunedMax := func() { sink = parloop.MaxSliceSerial(x) }
	scalarMax()
	maxRef := sink
	tunedMax()
	maxBits := 0.0
	if math.Float64bits(sink) == math.Float64bits(maxRef) {
		maxBits = 1
	}
	gated("kern_max_slice_bitwise", maxBits, "bool", Exact)
	nsSumScalar := measure(minDur, scalarSum)
	nsSumTuned := measure(minDur, tunedSum)
	nsDotTuned := measure(minDur, tunedDot)
	nsMaxScalar := measure(minDur, scalarMax)
	nsMaxTuned := measure(minDur, tunedMax)
	timed("kern_sum_scalar_ns_op", nsSumScalar, "ns/op")
	timed("kern_sum_slice_ns_op", nsSumTuned, "ns/op")
	ungated("kern_sum_slice_mflops", redN/nsSumTuned*1e3, "MFLOPS", Higher)
	ungated("kern_dot_slice_mflops", 2*redN/nsDotTuned*1e3, "MFLOPS", Higher)
	gated("kern_sum_slice_speedup", nsSumScalar/nsSumTuned, "x", Higher)
	gated("kern_max_slice_speedup", nsMaxScalar/nsMaxTuned, "x", Higher)
	gated("kern_sum_slice_allocs_op", testing.AllocsPerRun(20, tunedSum), "allocs/op", Exact)
	gated("kern_dot_slice_allocs_op", testing.AllocsPerRun(20, tunedDot), "allocs/op", Exact)
	gated("kern_max_slice_allocs_op", testing.AllocsPerRun(20, tunedMax), "allocs/op", Exact)

	// --- The real solver, scalar vs tuned kernel sets: the acceptance
	// series. "example3" here is the merged (parallelize-the-parent)
	// code shape of paper Example 3; the tuned kernels run under both
	// shapes, so both step-time ratios gate.
	caseDims := [3]int{33, 27, 25}
	if short {
		caseDims = [3]int{17, 15, 13}
	}
	logf("kernels: f3d cache solver steps (%dx%dx%d):", caseDims[0], caseDims[1], caseDims[2])
	cfg := f3d.DefaultConfig(grid.Single(caseDims[0], caseDims[1], caseDims[2]))
	stepNs := func(impl f3d.KernelImpl, merged bool) float64 {
		s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{Kernels: impl, Merged: merged})
		if err != nil {
			panic(fmt.Sprintf("benchdump: building solver: %v", err))
		}
		defer s.Close()
		f3d.InitPulse(s, 0.02)
		return measure(minDur, func() { s.Step() })
	}
	stepBits := func(merged bool) float64 {
		var hist [2][]uint64
		for i, impl := range []f3d.KernelImpl{f3d.ScalarKernels, f3d.TunedKernels} {
			s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{Kernels: impl, Merged: merged})
			if err != nil {
				panic(fmt.Sprintf("benchdump: building solver: %v", err))
			}
			f3d.InitPulse(s, 0.02)
			for step := 0; step < 3; step++ {
				st := s.Step()
				hist[i] = append(hist[i], math.Float64bits(st.Residual), math.Float64bits(st.MaxDelta))
			}
			s.Close()
		}
		for i := range hist[0] {
			if hist[0][i] != hist[1][i] {
				return 0
			}
		}
		return 1
	}
	gated("kern_f3d_tuned_bitwise", stepBits(false), "bool", Exact)
	nsStepScalar := stepNs(f3d.ScalarKernels, false)
	nsStepTuned := stepNs(f3d.TunedKernels, false)
	timed("kern_f3d_step_scalar_ns", nsStepScalar, "ns/step")
	timed("kern_f3d_step_tuned_ns", nsStepTuned, "ns/step")
	gated("kern_f3d_step_tuned_speedup", nsStepScalar/nsStepTuned, "x", Higher)
	nsMergedScalar := stepNs(f3d.ScalarKernels, true)
	nsMergedTuned := stepNs(f3d.TunedKernels, true)
	timed("kern_example3_scalar_ns", nsMergedScalar, "ns/step")
	timed("kern_example3_tuned_ns", nsMergedTuned, "ns/step")
	gated("kern_example3_tuned_speedup", nsMergedScalar/nsMergedTuned, "x", Higher)
}
