// Command benchdump runs the repository's benchmark trajectory suite —
// the deterministic reproductions behind Tables 1, 3, 4 and Figure 1,
// the Example 1-3 synchronization-structure ablations, the real F3D
// step — and writes the results as a schema-versioned JSON report.
//
// Usage:
//
//	benchdump [-short] [-out BENCH_PR7.json] [-label PR7]
//	          [-baseline bench_baseline.json] [-tol 0.20]
//	          [-trace-out example3_trace.jsonl]
//
// With -baseline, every gated series (analytic model values, simulator
// outputs, sync-event counts — things that only change when the code
// changes) is compared against the committed baseline and the process
// exits 1 if any drifts beyond -tol in its bad direction. Wall-clock
// series are recorded but never gated: CI machines differ. Exit 2 means
// the tool itself could not run (bad flags, unreadable baseline,
// short-mode mismatch).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
)

func main() {
	short := flag.Bool("short", false, "short mode: ~100ms per timed loop, smaller solver case")
	out := flag.String("out", "BENCH_PR7.json", "report output path")
	label := flag.String("label", "PR7", "report label")
	baseline := flag.String("baseline", "", "baseline report to gate against (empty = record only)")
	tol := flag.Float64("tol", 0.20, "allowed relative drift for gated series")
	traceOut := flag.String("trace-out", "", "write the Example 3 traced-run JSONL here (for tracetool/speedscope)")
	quiet := flag.Bool("q", false, "suppress per-series progress output")
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	report := Report{
		Schema: schemaVersion,
		Label:  *label,
		Go:     runtime.Version(),
		Short:  *short,
		Series: runSuite(*short, *traceOut, logf),
	}
	if err := writeReport(*out, report); err != nil {
		fmt.Fprintf(os.Stderr, "benchdump: %v\n", err)
		os.Exit(2)
	}
	logf("wrote %s (%d series)", *out, len(report.Series))

	if *baseline == "" {
		return
	}
	base, err := loadReport(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdump: %v\n", err)
		os.Exit(2)
	}
	if base.Short != report.Short {
		fmt.Fprintf(os.Stderr, "benchdump: baseline short=%v but this run short=%v; regenerate the baseline\n",
			base.Short, report.Short)
		os.Exit(2)
	}
	regs := compare(base, report, *tol)
	if len(regs) == 0 {
		logf("all gated series within %.0f%% of %s", 100**tol, *baseline)
		return
	}
	fmt.Fprintf(os.Stderr, "benchdump: %d gated series regressed beyond %.0f%%:\n", len(regs), 100**tol)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	os.Exit(1)
}
