// Command benchdump runs the repository's benchmark trajectory suite —
// the deterministic reproductions behind Tables 1, 3, 4 and Figure 1,
// the Example 1-3 synchronization-structure ablations, the real F3D
// step — and writes the results as a schema-versioned JSON report.
//
// Usage:
//
//	benchdump [-short] [-suite full|kernels] [-out BENCH_PR10.json]
//	          [-label PR10] [-baseline bench_baseline.json] [-tol 0.20]
//	          [-trace-out example3_trace.jsonl]
//
// With -baseline, every gated series (analytic model values, simulator
// outputs, sync-event counts — things that only change when the code
// changes) is compared against the committed baseline and the process
// exits 1 if any drifts beyond -tol in its bad direction. Wall-clock
// series are recorded but never gated: CI machines differ — except the
// kern_ tuned-vs-scalar speedup ratios, which are dimensionless
// (both sides run in the same process) and therefore gate. Exit 2
// means the tool itself could not run (bad flags, unreadable baseline,
// short-mode mismatch).
//
// -suite kernels runs only the kern_ per-kernel series (the CI
// perf-gate job uses this: it is minutes faster than the full
// trajectory suite); the baseline is then filtered to kern_ series so
// the absent trajectory series do not read as dropped measurements.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
)

func main() {
	short := flag.Bool("short", false, "short mode: ~100ms per timed loop, smaller solver case")
	suite := flag.String("suite", "full", `series to run: "full" or "kernels" (kern_ series only)`)
	out := flag.String("out", "BENCH_PR10.json", "report output path")
	label := flag.String("label", "PR10", "report label")
	baseline := flag.String("baseline", "", "baseline report to gate against (empty = record only)")
	tol := flag.Float64("tol", 0.20, "allowed relative drift for gated series")
	traceOut := flag.String("trace-out", "", "write the Example 3 traced-run JSONL here (for tracetool/speedscope)")
	quiet := flag.Bool("q", false, "suppress per-series progress output")
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var series []Series
	switch *suite {
	case "full":
		series = runSuite(*short, *traceOut, logf)
	case "kernels":
		series = runKernelSuite(*short, logf)
	default:
		fmt.Fprintf(os.Stderr, "benchdump: unknown -suite %q (want full or kernels)\n", *suite)
		os.Exit(2)
	}
	report := Report{
		Schema:  schemaVersion,
		Label:   *label,
		Go:      runtime.Version(),
		GoAMD64: goAMD64Level(),
		Short:   *short,
		Series:  series,
	}
	if err := writeReport(*out, report); err != nil {
		fmt.Fprintf(os.Stderr, "benchdump: %v\n", err)
		os.Exit(2)
	}
	logf("wrote %s (%d series)", *out, len(report.Series))

	if *baseline == "" {
		return
	}
	base, err := loadReport(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdump: %v\n", err)
		os.Exit(2)
	}
	if base.Short != report.Short {
		fmt.Fprintf(os.Stderr, "benchdump: baseline short=%v but this run short=%v; regenerate the baseline\n",
			base.Short, report.Short)
		os.Exit(2)
	}
	if *suite == "kernels" {
		base = filterPrefix(base, "kern_")
	}
	regs := compare(base, report, *tol)
	if len(regs) == 0 {
		logf("all gated series within %.0f%% of %s", 100**tol, *baseline)
		return
	}
	fmt.Fprintf(os.Stderr, "benchdump: %d gated series regressed beyond %.0f%%:\n", len(regs), 100**tol)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	os.Exit(1)
}
