package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/f3d"
)

// fakeDaemon serves the two daemon surfaces f3dc touches — the
// readiness probe and the shard API — over real HTTP, exactly as
// cmd/f3dd mounts them.
func fakeDaemon(t *testing.T) (*httptest.Server, *cluster.Host) {
	t.Helper()
	host := cluster.NewHost()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.Handle("POST /shards/", cluster.NewShardServer(host))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, host
}

// result mirrors run's JSON output shape.
type result struct {
	Job   string `json:"job"`
	Zones int    `json:"zones"`
	cluster.SolveResult
}

func runJSON(t *testing.T, o options) result {
	t.Helper()
	var buf bytes.Buffer
	if err := run(&buf, o); err != nil {
		t.Fatalf("run: %v", err)
	}
	var res result
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("run output is not JSON: %v\n%s", err, buf.String())
	}
	return res
}

// caseOpts is the canonical small test case: 20×6×5 stacked into
// three zones at J cuts 6 and 12.
func caseOpts(workers string) options {
	return options{
		workers: workers,
		n:       20, kmax: 6, lmax: 5, cuts: "6,12",
		steps: 4, pulse: 0.02, job: "f3dc-test",
		timeout: 10 * time.Second, quiet: true,
	}
}

// TestRunShardsAcrossDaemons drives the full CLI path (minus flag
// parsing) against two fake daemons and checks the reassembled
// history is bitwise the single-node one.
func TestRunShardsAcrossDaemons(t *testing.T) {
	a, hostA := fakeDaemon(t)
	b, hostB := fakeDaemon(t)
	res := runJSON(t, caseOpts(a.URL+","+b.URL))

	if res.Zones != 3 || res.Workers != 2 || len(res.Groups) != 2 {
		t.Errorf("plan = %d zones over %d workers in %d groups, want 3/2/2", res.Zones, res.Workers, len(res.Groups))
	}

	c, ifaces := f3d.StackAlongJ("f3dc-test", 20, 6, 5, []int{6, 12})
	cfg := f3d.DefaultConfig(c)
	cfg.Case = c
	cfg.Interfaces = ifaces
	s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{})
	if err != nil {
		t.Fatalf("reference solver: %v", err)
	}
	defer s.Close()
	f3d.InitPulse(s, 0.02)
	for i := 0; i < 4; i++ {
		st := s.Step()
		if math.Float64bits(res.History[i].Residual) != math.Float64bits(st.Residual) {
			t.Fatalf("step %d residual %v, single node %v", i, res.History[i].Residual, st.Residual)
		}
	}

	if hostA.ShardCount() != 0 || hostB.ShardCount() != 0 {
		t.Errorf("shards leaked: %d on a, %d on b", hostA.ShardCount(), hostB.ShardCount())
	}
}

// TestRunSkipsDeadWorkers: an unreachable URL in -workers is skipped
// at the readiness probe and the solve proceeds on the survivors.
func TestRunSkipsDeadWorkers(t *testing.T) {
	a, _ := fakeDaemon(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	res := runJSON(t, caseOpts(dead.URL+","+a.URL))
	if res.Workers != 1 {
		t.Errorf("solve used %d workers, want 1 (the dead one skipped)", res.Workers)
	}
	if len(res.History) != 4 {
		t.Errorf("history has %d steps, want 4", len(res.History))
	}
}

// TestRunErrors: bad flags and an all-dead fleet are errors, not
// panics.
func TestRunErrors(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	cases := []struct {
		name string
		o    options
		want string
	}{
		{"no workers", options{}, "no workers"},
		{"no live workers", caseOpts(dead.URL), "answered /healthz"},
		{"cut too low", func() options { o := caseOpts(dead.URL); o.cuts = "1,12"; return o }(), "out of range"},
		{"cut too high", func() options { o := caseOpts(dead.URL); o.cuts = "6,18"; return o }(), "out of range"},
		{"garbage cut", func() options { o := caseOpts(dead.URL); o.cuts = "six"; return o }(), "bad cut"},
		{"empty cuts", func() options { o := caseOpts(dead.URL); o.cuts = ""; return o }(), "at least one"},
	}
	for _, tc := range cases {
		err := run(&bytes.Buffer{}, tc.o)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
