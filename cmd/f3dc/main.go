// Command f3dc is the cluster coordinator CLI: it shards one
// multi-zone F3D solve across a fleet of f3dd worker daemons and
// reassembles the convergence history, which must be bitwise the
// history a single node would have produced (the distributed form of
// the paper's unchanged-convergence claim).
//
// Usage:
//
//	f3dc -workers URL[,URL...] [-n 33] [-kmax 25] [-lmax 21]
//	     [-cuts 11,22] [-steps 10] [-pulse 0.02] [-job NAME]
//	     [-checkpoint-every N] [-max-failovers N] [-timeout D] [-q]
//	     [-trace] [-trace-buf N] [-trace-out FILE] [-node TAG]
//	     [-serve HOST:PORT]
//
// The case is an n×kmax×lmax box stacked into zones along J at the
// given cut planes (two-point overlap, as F3D zones share boundary
// planes). Each worker URL is the root of an f3dd daemon; the
// coordinator probes /healthz before planning, so draining daemons
// are never routed to, then drives POST /shards/{create,step,release}
// in lockstep. Worker loss mid-solve triggers checkpoint rollback and
// re-sharding over the survivors; the history still reproduces the
// single-node solve bitwise.
//
// The result is printed as JSON on stdout: the per-step history plus
// the shard plan and failover count. Exit status 1 means the solve
// (or a flag) failed.
//
// With -trace the coordinator traces its side of the solve, switches
// every worker's ring on for a clean window, and after the solve pulls
// each worker's trace over the /trace cursor API, aligns clocks from
// probe RTT midpoints, and merges everything into one node-tagged
// fleet timeline (-trace-out writes it as JSONL; feed it to
// `tracetool cluster` for the cross-node critical path). With -serve
// the process stays up after the solve and exposes the fleet rollup:
// GET /metrics (coordinator counters plus every worker's scrape,
// relabeled worker="<id>"), GET /trace (merged timeline), GET /analyze
// (cluster critical-path report), GET /dash (per-worker-lane view).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/f3d"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/simclock"
)

// options collects the CLI flags; run is pure in them so tests can
// drive the whole binary short of main.
type options struct {
	workers       string
	n, kmax, lmax int
	cuts          string
	steps         int
	pulse         float64
	job           string
	ckpt, maxFail int
	timeout       time.Duration
	quiet         bool

	trace    bool
	traceBuf int
	traceOut string
	node     string
	serve    string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("f3dc: ")

	var o options
	flag.StringVar(&o.workers, "workers", "", "comma-separated f3dd base URLs (required)")
	flag.IntVar(&o.n, "n", 33, "global J extent of the stacked case")
	flag.IntVar(&o.kmax, "kmax", 25, "K extent")
	flag.IntVar(&o.lmax, "lmax", 21, "L extent")
	flag.StringVar(&o.cuts, "cuts", "11,22", "comma-separated J cut planes (zone boundaries)")
	flag.IntVar(&o.steps, "steps", 10, "lockstep time steps")
	flag.Float64Var(&o.pulse, "pulse", 0.02, "initial pulse amplitude")
	flag.StringVar(&o.job, "job", "f3dc", "workload key (consistent hashing routes on it)")
	flag.IntVar(&o.ckpt, "checkpoint-every", 0, "checkpoint cadence in steps (0 = every step, <0 = never)")
	flag.IntVar(&o.maxFail, "max-failovers", 0, "re-shard budget before giving up (0 = engine default)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request HTTP timeout")
	flag.BoolVar(&o.quiet, "q", false, "suppress progress logging on stderr")
	flag.BoolVar(&o.trace, "trace", false, "trace the solve: enable worker tracing, collect the fleet timeline")
	flag.IntVar(&o.traceBuf, "trace-buf", 65536, "coordinator trace ring capacity (events)")
	flag.StringVar(&o.traceOut, "trace-out", "", "write the merged node-tagged fleet timeline (JSONL) here")
	flag.StringVar(&o.node, "node", "coord", "node tag on the coordinator's own trace events")
	flag.StringVar(&o.serve, "serve", "", "after the solve, serve /metrics /trace /analyze /dash on this address")
	flag.Parse()

	if err := run(os.Stdout, o); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, o options) error {
	urls := splitList(o.workers)
	if len(urls) == 0 {
		return fmt.Errorf("no workers: pass -workers URL[,URL...]")
	}
	spec, err := buildSpec(o)
	if err != nil {
		return err
	}

	var tracer *obs.Tracer
	if o.trace || o.serve != "" {
		tracer = obs.NewTracer(o.traceBuf, simclock.Real{})
		if o.trace {
			tracer.Enable()
		}
	}
	coord := cluster.New(cluster.Config{Tracer: tracer, Node: o.node})
	col := cluster.NewCollector(cluster.CollectorConfig{Coord: tracer, Node: o.node})
	httpc := &http.Client{Timeout: o.timeout}
	var workers []workerRef
	for _, u := range urls {
		client := &cluster.HTTPClient{BaseURL: u, Client: httpc}
		if err := client.Ping(); err != nil {
			if !o.quiet {
				log.Printf("worker %s not ready, skipping: %v", u, err)
			}
			continue
		}
		if err := coord.Register(u, client); err != nil {
			return fmt.Errorf("register %s: %w", u, err)
		}
		if o.trace {
			// Switch the worker's ring on for a clean window; a daemon
			// without the trace API still solves, it just contributes
			// no worker-side spans (the report degrades to plausible).
			if err := client.SetTrace(true, true); err != nil && !o.quiet {
				log.Printf("worker %s: enabling trace: %v", u, err)
			}
		}
		col.AddWorker(u, client)
		workers = append(workers, workerRef{id: u, client: client})
	}
	if len(workers) == 0 {
		return fmt.Errorf("none of the %d workers answered /healthz", len(urls))
	}
	if !o.quiet {
		log.Printf("solving %q: %d zones x %d steps over %d/%d workers",
			o.job, len(spec.Zones), o.steps, len(workers), len(urls))
	}
	if o.trace {
		col.SyncClocks()
	}

	res, err := coord.Solve(spec)
	if err != nil {
		return fmt.Errorf("solve: %w", err)
	}
	if !o.quiet {
		log.Printf("done: %d steps, %d shards, %d failovers",
			len(res.History), len(res.Groups), res.Failovers)
	}

	if o.trace {
		col.SyncClocks()
		col.Pull()
		if o.traceOut != "" {
			if err := writeTimeline(o.traceOut, col.Timeline()); err != nil {
				return err
			}
		}
		if !o.quiet {
			rep := analyze.ClusterAnalyze(col.Timeline(), analyze.ClusterConfig{CoordNode: o.node})
			log.Printf("trace %s: closed=%v exchange+barrier share %.1f%%",
				res.Trace, rep.Closed, 100*rep.ExchangeBarrierShare)
		}
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Job   string `json:"job"`
		Zones int    `json:"zones"`
		cluster.SolveResult
	}{Job: o.job, Zones: len(spec.Zones), SolveResult: res}); err != nil {
		return err
	}

	if o.serve != "" {
		sv := newObsServer(coord, col, workers)
		if !o.quiet {
			log.Printf("serving /metrics /trace /analyze /dash on %s", o.serve)
		}
		return http.ListenAndServe(o.serve, sv)
	}
	return nil
}

// buildSpec turns the flag set into the sharded solve spec: the
// stacked multi-zone case plus the lockstep parameters.
func buildSpec(o options) (cluster.SolveSpec, error) {
	cuts, err := parseCuts(o.cuts, o.n)
	if err != nil {
		return cluster.SolveSpec{}, err
	}
	c, ifaces := f3d.StackAlongJ(o.job, o.n, o.kmax, o.lmax, cuts)
	return cluster.SolveSpec{
		Job:             o.job,
		Zones:           c.Zones,
		Interfaces:      ifaces,
		Config:          f3d.DefaultConfig(c),
		PulseAmp:        o.pulse,
		Steps:           o.steps,
		CheckpointEvery: o.ckpt,
		MaxFailovers:    o.maxFail,
	}, nil
}

// writeTimeline dumps a merged fleet timeline as JSONL.
func writeTimeline(path string, events []obs.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := obs.WriteEventsJSONL(f, events); err != nil {
		f.Close()
		return fmt.Errorf("trace-out: %w", err)
	}
	return f.Close()
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseCuts parses and validates the -cuts flag against the case's J
// extent, mirroring f3d.StackAlongJ's rule (every zone keeps at least
// four J-planes) so a bad flag is an error, not a panic.
func parseCuts(s string, n int) ([]int, error) {
	parts := splitList(s)
	if len(parts) == 0 {
		return nil, fmt.Errorf("need at least one J cut plane (-cuts)")
	}
	cuts := make([]int, len(parts))
	prev := 0
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad cut %q: %v", p, err)
		}
		if v < prev+2 || v > n-4 {
			return nil, fmt.Errorf("cut %d out of range: want [%d, %d] for n=%d", v, prev+2, n-4, n)
		}
		cuts[i], prev = v, v
	}
	return cuts, nil
}
