// Command f3dc is the cluster coordinator CLI: it shards one
// multi-zone F3D solve across a fleet of f3dd worker daemons and
// reassembles the convergence history, which must be bitwise the
// history a single node would have produced (the distributed form of
// the paper's unchanged-convergence claim).
//
// Usage:
//
//	f3dc -workers URL[,URL...] [-n 33] [-kmax 25] [-lmax 21]
//	     [-cuts 11,22] [-steps 10] [-pulse 0.02] [-job NAME]
//	     [-checkpoint-every N] [-max-failovers N] [-timeout D] [-q]
//
// The case is an n×kmax×lmax box stacked into zones along J at the
// given cut planes (two-point overlap, as F3D zones share boundary
// planes). Each worker URL is the root of an f3dd daemon; the
// coordinator probes /healthz before planning, so draining daemons
// are never routed to, then drives POST /shards/{create,step,release}
// in lockstep. Worker loss mid-solve triggers checkpoint rollback and
// re-sharding over the survivors; the history still reproduces the
// single-node solve bitwise.
//
// The result is printed as JSON on stdout: the per-step history plus
// the shard plan and failover count. Exit status 1 means the solve
// (or a flag) failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/f3d"
)

// options collects the CLI flags; run is pure in them so tests can
// drive the whole binary short of main.
type options struct {
	workers       string
	n, kmax, lmax int
	cuts          string
	steps         int
	pulse         float64
	job           string
	ckpt, maxFail int
	timeout       time.Duration
	quiet         bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("f3dc: ")

	var o options
	flag.StringVar(&o.workers, "workers", "", "comma-separated f3dd base URLs (required)")
	flag.IntVar(&o.n, "n", 33, "global J extent of the stacked case")
	flag.IntVar(&o.kmax, "kmax", 25, "K extent")
	flag.IntVar(&o.lmax, "lmax", 21, "L extent")
	flag.StringVar(&o.cuts, "cuts", "11,22", "comma-separated J cut planes (zone boundaries)")
	flag.IntVar(&o.steps, "steps", 10, "lockstep time steps")
	flag.Float64Var(&o.pulse, "pulse", 0.02, "initial pulse amplitude")
	flag.StringVar(&o.job, "job", "f3dc", "workload key (consistent hashing routes on it)")
	flag.IntVar(&o.ckpt, "checkpoint-every", 0, "checkpoint cadence in steps (0 = every step, <0 = never)")
	flag.IntVar(&o.maxFail, "max-failovers", 0, "re-shard budget before giving up (0 = engine default)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request HTTP timeout")
	flag.BoolVar(&o.quiet, "q", false, "suppress progress logging on stderr")
	flag.Parse()

	if err := run(os.Stdout, o); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, o options) error {
	urls := splitList(o.workers)
	if len(urls) == 0 {
		return fmt.Errorf("no workers: pass -workers URL[,URL...]")
	}
	cuts, err := parseCuts(o.cuts, o.n)
	if err != nil {
		return err
	}

	c, ifaces := f3d.StackAlongJ(o.job, o.n, o.kmax, o.lmax, cuts)
	cfg := f3d.DefaultConfig(c)

	coord := cluster.New(cluster.Config{})
	httpc := &http.Client{Timeout: o.timeout}
	live := 0
	for _, u := range urls {
		client := &cluster.HTTPClient{BaseURL: u, Client: httpc}
		if err := client.Ping(); err != nil {
			if !o.quiet {
				log.Printf("worker %s not ready, skipping: %v", u, err)
			}
			continue
		}
		if err := coord.Register(u, client); err != nil {
			return fmt.Errorf("register %s: %w", u, err)
		}
		live++
	}
	if live == 0 {
		return fmt.Errorf("none of the %d workers answered /healthz", len(urls))
	}
	if !o.quiet {
		log.Printf("solving %q: %d zones x %d steps over %d/%d workers",
			o.job, len(c.Zones), o.steps, live, len(urls))
	}

	res, err := coord.Solve(cluster.SolveSpec{
		Job:             o.job,
		Zones:           c.Zones,
		Interfaces:      ifaces,
		Config:          cfg,
		PulseAmp:        o.pulse,
		Steps:           o.steps,
		CheckpointEvery: o.ckpt,
		MaxFailovers:    o.maxFail,
	})
	if err != nil {
		return fmt.Errorf("solve: %w", err)
	}
	if !o.quiet {
		log.Printf("done: %d steps, %d shards, %d failovers",
			len(res.History), len(res.Groups), res.Failovers)
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Job   string `json:"job"`
		Zones int    `json:"zones"`
		cluster.SolveResult
	}{Job: o.job, Zones: len(c.Zones), SolveResult: res})
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseCuts parses and validates the -cuts flag against the case's J
// extent, mirroring f3d.StackAlongJ's rule (every zone keeps at least
// four J-planes) so a bad flag is an error, not a panic.
func parseCuts(s string, n int) ([]int, error) {
	parts := splitList(s)
	if len(parts) == 0 {
		return nil, fmt.Errorf("need at least one J cut plane (-cuts)")
	}
	cuts := make([]int, len(parts))
	prev := 0
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad cut %q: %v", p, err)
		}
		if v < prev+2 || v > n-4 {
			return nil, fmt.Errorf("cut %d out of range: want [%d, %d] for n=%d", v, prev+2, n-4, n)
		}
		cuts[i], prev = v, v
	}
	return cuts, nil
}
