package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/simclock"
)

// fakeTracedDaemon is a fakeDaemon that also serves the observability
// surface f3dc's collector and metrics rollup scrape: /trace with the
// cursor headers, /metrics, /trace/enable, and a /healthz that reports
// its clock — the same contract cmd/f3dd exposes.
func fakeTracedDaemon(t *testing.T, id string) (*httptest.Server, *obs.Tracer) {
	t.Helper()
	host := cluster.NewHost()
	tracer := obs.NewTracer(4096, simclock.Real{})
	host.SetObs(id, tracer)
	reg := obs.NewRegistry()
	reg.Counter("daemon_requests_total", "Requests served.").Inc()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "now_ns": simclock.Real{}.Now().UnixNano(),
			"trace_total": tracer.Total(), "trace_dropped": tracer.Dropped(),
		})
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		since, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
		events, dropped := tracer.EventsSince(since)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Trace-Dropped", strconv.FormatUint(dropped, 10))
		w.Header().Set("X-Trace-Next", strconv.FormatUint(obs.NextCursor(events, since), 10))
		obs.WriteEventsJSONL(w, events)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("POST /trace/enable", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Enabled *bool `json:"enabled"`
			Reset   bool  `json:"reset"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		if req.Reset {
			tracer.Reset()
		}
		if req.Enabled == nil || *req.Enabled {
			tracer.Enable()
		} else {
			tracer.Disable()
		}
		w.Write([]byte(`{"enabled":true}`))
	})
	mux.Handle("POST /shards/", cluster.NewShardServer(host))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, tracer
}

// TestRunTraceCollectsTimeline drives the CLI path with -trace
// -trace-out against two traced fake daemons: the merged timeline must
// land on disk as parseable JSONL, every event node-tagged, and the
// cluster critical-path report over it must close exactly.
func TestRunTraceCollectsTimeline(t *testing.T) {
	a, _ := fakeTracedDaemon(t, "a")
	b, _ := fakeTracedDaemon(t, "b")

	out := filepath.Join(t.TempDir(), "fleet.jsonl")
	o := caseOpts(a.URL + "," + b.URL)
	o.trace = true
	o.traceBuf = 4096
	o.traceOut = out
	o.node = "coord"
	res := runJSON(t, o)
	if res.Trace == "" {
		t.Fatal("traced solve reported no trace id")
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("trace-out not written: %v", err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatalf("trace-out is not JSONL: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("merged timeline is empty")
	}
	nodes := map[string]bool{}
	for i, e := range events {
		if e.Node == "" {
			t.Fatalf("event %d (%v) has no node tag; fleet timelines must attribute every span", i, e.Kind)
		}
		nodes[e.Node] = true
	}
	for _, want := range []string{"coord", a.URL, b.URL} {
		if !nodes[want] {
			t.Errorf("timeline has no events from %q (nodes seen: %v)", want, nodes)
		}
	}

	rep := analyze.ClusterAnalyze(events, analyze.ClusterConfig{CoordNode: "coord"})
	if err := analyze.CheckClusterClosure(rep); err != nil {
		t.Errorf("cluster attribution does not close: %v", err)
	}
	if len(rep.Solves) != 1 || rep.Solves[0].Trace != res.Trace {
		t.Errorf("report solves = %+v, want exactly the solve %q", rep.Solves, res.Trace)
	}
}

// TestObsServerEndpoints exercises the -serve surface directly: fleet
// metrics rollup with per-worker relabeling, merged /trace, /analyze
// closure, the dashboard, and /healthz.
func TestObsServerEndpoints(t *testing.T) {
	a, _ := fakeTracedDaemon(t, "")
	tracer := obs.NewTracer(4096, simclock.Real{})
	tracer.Enable()
	coord := cluster.New(cluster.Config{Tracer: tracer, Node: "coord"})
	col := cluster.NewCollector(cluster.CollectorConfig{Coord: tracer, Node: "coord"})

	client := &cluster.HTTPClient{BaseURL: a.URL, Client: a.Client()}
	if err := coord.Register(a.URL, client); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := client.SetTrace(true, true); err != nil {
		t.Fatalf("enable worker trace: %v", err)
	}
	col.AddWorker(a.URL, client)

	o := caseOpts(a.URL)
	spec, err := buildSpec(o)
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	if _, err := coord.Solve(spec); err != nil {
		t.Fatalf("solve: %v", err)
	}

	sv := newObsServer(coord, col, []workerRef{{id: a.URL, client: client}})
	get := func(path string) (int, string, http.Header) {
		t.Helper()
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		sv.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String(), rec.Header()
	}

	code, body, _ := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	if !strings.Contains(body, "cluster_solves_total 1") {
		t.Errorf("/metrics missing the coordinator's own counters:\n%s", body)
	}
	up := `cluster_worker_up{worker="` + a.URL + `"} 1`
	if !strings.Contains(body, up) {
		t.Errorf("/metrics missing %q:\n%s", up, body)
	}
	relabeled := `daemon_requests_total{worker="` + a.URL + `"}`
	if !strings.Contains(body, relabeled) {
		t.Errorf("/metrics missing relabeled worker sample %q:\n%s", relabeled, body)
	}

	code, body, hdr := get("/trace")
	if code != http.StatusOK {
		t.Fatalf("GET /trace = %d", code)
	}
	if got := hdr.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("/trace content type = %q", got)
	}
	events, err := obs.ReadJSONL(strings.NewReader(body))
	if err != nil || len(events) == 0 {
		t.Fatalf("/trace body not parseable JSONL (%d events): %v", len(events), err)
	}
	workerTagged := false
	for _, e := range events {
		if e.Node == a.URL {
			workerTagged = true
		}
	}
	if !workerTagged {
		t.Error("/trace timeline has no worker-side events; the collector pull behind the handler did not merge them")
	}

	code, body, _ = get("/analyze")
	if code != http.StatusOK {
		t.Fatalf("GET /analyze = %d", code)
	}
	var rep analyze.ClusterReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/analyze is not a cluster report: %v", err)
	}
	if !rep.Closed || len(rep.Solves) != 1 {
		t.Errorf("/analyze closed=%v solves=%d, want closed with 1 solve", rep.Closed, len(rep.Solves))
	}
	if err := analyze.CheckClusterClosure(&rep); err != nil {
		t.Errorf("/analyze report fails closure: %v", err)
	}

	code, body, hdr = get("/dash")
	if code != http.StatusOK || !strings.Contains(body, "<!DOCTYPE html>") {
		t.Fatalf("GET /dash = %d, body %.60q", code, body)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "text/html") {
		t.Errorf("/dash content type = %q", hdr.Get("Content-Type"))
	}
	// The dashboard must consume the report keys /analyze actually
	// emits; a drifting field name renders an empty dashboard.
	for _, key := range []string{"exchange_barrier_share", "straggler_ns", "wall_ns", "rpc_ns"} {
		if !strings.Contains(body, key) {
			t.Errorf("/dash does not reference report key %q", key)
		}
	}

	code, body, _ = get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"workers":1`) {
		t.Errorf("GET /healthz = %d %s, want 200 with workers:1", code, body)
	}

	var buf bytes.Buffer
	if err := obs.WriteEventsJSONL(&buf, nil); err != nil {
		t.Errorf("empty timeline write: %v", err)
	}
}

// TestMetricsRollupMarksDownWorkers: an unreachable worker degrades to
// cluster_worker_up 0 instead of failing the whole scrape.
func TestMetricsRollupMarksDownWorkers(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	coord := cluster.New(cluster.Config{})
	col := cluster.NewCollector(cluster.CollectorConfig{})
	client := &cluster.HTTPClient{BaseURL: dead.URL}
	sv := newObsServer(coord, col, []workerRef{{id: dead.URL, client: client}})

	rec := httptest.NewRecorder()
	sv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	want := `cluster_worker_up{worker="` + dead.URL + `"} 0`
	if !strings.Contains(rec.Body.String(), want) {
		t.Errorf("/metrics missing %q:\n%s", want, rec.Body.String())
	}
}

// TestRelabelExposition pins the label-injection rules: labeled and
// unlabeled samples both gain worker=, comments and blanks drop.
func TestRelabelExposition(t *testing.T) {
	rec := httptest.NewRecorder()
	relabelExposition(rec, "# HELP x y\n# TYPE x counter\nx 3\nlat{le=\"0.1\"} 7\n\n", "w01")
	got := rec.Body.String()
	want := "x{worker=\"w01\"} 3\nlat{worker=\"w01\",le=\"0.1\"} 7\n"
	if got != want {
		t.Errorf("relabeled exposition:\n%q\nwant:\n%q", got, want)
	}
}
