package main

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// workerRef pairs a registered worker's id with its HTTP client, so
// the observability server can scrape it.
type workerRef struct {
	id     string
	client *cluster.HTTPClient
}

//go:embed dash.html
var dashHTML []byte

// obsServer is the coordinator's observability surface, mounted when
// f3dc runs with -serve:
//
//	GET /metrics  fleet rollup: the coordinator's own counters plus
//	              every worker's scraped exposition, each sample
//	              relabeled with worker="<id>"
//	GET /trace    the merged node-tagged fleet timeline as JSONL
//	              (pulls every worker's cursor first)
//	GET /analyze  the cluster critical-path report (cross-node
//	              per-step attribution, stragglers, closure)
//	GET /dash     per-worker-lane HTML view over /analyze
//	GET /healthz  liveness, with the live-worker count
type obsServer struct {
	coord   *cluster.Coordinator
	col     *cluster.Collector
	workers []workerRef
	mux     *http.ServeMux
}

func newObsServer(coord *cluster.Coordinator, col *cluster.Collector, workers []workerRef) *obsServer {
	sv := &obsServer{coord: coord, col: col, workers: workers, mux: http.NewServeMux()}
	sv.mux.HandleFunc("GET /metrics", sv.handleMetrics)
	sv.mux.HandleFunc("GET /trace", sv.handleTrace)
	sv.mux.HandleFunc("GET /analyze", sv.handleAnalyze)
	sv.mux.HandleFunc("GET /dash", sv.handleDash)
	sv.mux.HandleFunc("GET /healthz", sv.handleHealthz)
	return sv
}

func (sv *obsServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sv.mux.ServeHTTP(w, r)
}

// handleMetrics rolls the fleet up into one exposition: the
// coordinator's registry verbatim, then each worker's scrape with
// every sample relabeled worker="<id>". Worker HELP/TYPE comments are
// dropped — the families would repeat per worker — so worker samples
// arrive untyped, which Prometheus accepts. Unreachable workers are
// skipped with a marker gauge rather than failing the whole scrape.
func (sv *obsServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := sv.coord.Metrics().WritePrometheus(w); err != nil {
		return
	}
	for _, wk := range sv.workers {
		text, err := wk.client.FetchMetrics()
		up := 1
		if err != nil {
			up = 0
		}
		fmt.Fprintf(w, "cluster_worker_up{worker=%q} %d\n", wk.id, up)
		if err == nil {
			relabelExposition(w, text, wk.id)
		}
	}
}

// relabelExposition copies the sample lines of a Prometheus text
// exposition, injecting a worker label into each; comments and blank
// lines are dropped.
func relabelExposition(w http.ResponseWriter, text, worker string) {
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			if line[i] == '{' {
				fmt.Fprintf(w, "%s{worker=%q,%s\n", line[:i], worker, line[i+1:])
			} else {
				fmt.Fprintf(w, "%s{worker=%q}%s\n", line[:i], worker, line[i:])
			}
		}
	}
}

func (sv *obsServer) handleTrace(w http.ResponseWriter, r *http.Request) {
	sv.col.Pull()
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = obs.WriteEventsJSONL(w, sv.col.Timeline())
}

func (sv *obsServer) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	sv.col.Pull()
	rep := analyze.ClusterAnalyze(sv.col.Timeline(), analyze.ClusterConfig{CoordNode: sv.coord.Node()})
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}

func (sv *obsServer) handleDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-cache")
	_, _ = w.Write(dashHTML)
}

func (sv *obsServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": "ok", "workers": len(sv.coord.Live()),
	})
}
